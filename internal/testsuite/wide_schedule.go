package testsuite

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/mpi"
)

// Wide-schedule-space cases: correct 3-rank programs whose schedule
// spaces are substantially larger than the 2-rank suite's — wildcard
// matching against multiple concurrent senders, and racing Iprobe/Test
// polling loops on every rank of a ring. They pin down that the
// controlled scheduler and DPOR exploration stay sound when the choice
// tree is wide, not just when it is deep: every interleaving must be
// race-free and deadlock-free, and exploration that runs out of budget
// on a correct case is a coverage statement, not a violation.

// wideMsgs is how many messages each sender streams to rank 0 in the
// multi-sender case: two senders with per-source ordering gives
// C(6,3) = 20 distinct wildcard match interleavings.
const wideMsgs = 3

func wideScheduleCases() []Case {
	return []Case{
		{
			Name:  "wide-sched/multi_sender_wildcard",
			Doc:   "3 ranks: two synced senders stream messages, rank 0 wildcard-recvs them all in arrival order: correct under every match order",
			Ranks: 3,
			App: func(s *core.Session) error {
				if s.Rank() != 0 {
					buf, err := s.CudaMallocF64(bufN)
					if err != nil {
						return err
					}
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					s.Dev.DeviceSynchronize()
					for m := 0; m < wideMsgs; m++ {
						if err := s.Comm.Send(buf, bufN, mpi.Float64, 0, m); err != nil {
							return err
						}
					}
					return nil
				}
				// Which sender each wildcard receive matches is a schedule
				// choice (per-source order is fixed by non-overtaking), so
				// the match tree has C(2*wideMsgs, wideMsgs) leaves. The
				// program is correct whichever interleaving wins because
				// every receive lands in a fresh buffer and the dependent
				// kernel touches only the completed one.
				perSource := make(map[int]int)
				for m := 0; m < 2*wideMsgs; m++ {
					buf, err := s.CudaMallocF64(bufN)
					if err != nil {
						return err
					}
					st, err := s.Comm.Recv(buf, bufN, mpi.Float64, mpi.AnySource, mpi.AnyTag)
					if err != nil {
						return err
					}
					if st.Tag != perSource[st.Source] {
						return fmt.Errorf("source %d overtook itself: got tag %d, want %d",
							st.Source, st.Tag, perSource[st.Source])
					}
					perSource[st.Source]++
					if err := launch(s, "k_inc", nil, buf); err != nil {
						return err
					}
				}
				if perSource[1] != wideMsgs || perSource[2] != wideMsgs {
					return fmt.Errorf("message counts per source: %v, want %d each", perSource, wideMsgs)
				}
				return nil
			},
		},
		{
			Name:  "wide-sched/iprobe_test_ring",
			Doc:   "3-rank ring: every rank races an Iprobe loop (tag 5) against a Test loop (tag 7) for its neighbor's messages: correct on every poll interleaving",
			Ranks: 3,
			App: func(s *core.Session) error {
				sendBuf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				probeBuf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				recvBuf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				size := s.Comm.Size()
				right := (s.Rank() + 1) % size
				left := (s.Rank() + size - 1) % size
				if err := launch(s, "k_write", nil, sendBuf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				// Two messages to the right neighbor: tag 5 is discovered by
				// the Iprobe loop and consumed by a blocking Recv only after
				// the probe saw it; tag 7 completes a posted Irecv through
				// the Test loop. The two pollers race on every rank at once,
				// and each fruitful poll is an independent complete-vs-defer
				// schedule choice, so the ring multiplies the choice tree
				// across all three ranks.
				s1, err := s.Comm.Isend(sendBuf, bufN, mpi.Float64, right, 5)
				if err != nil {
					return err
				}
				s2, err := s.Comm.Isend(sendBuf, bufN, mpi.Float64, right, 7)
				if err != nil {
					return err
				}
				rreq, err := s.Comm.Irecv(recvBuf, bufN, mpi.Float64, left, 7)
				if err != nil {
					return err
				}
				probed, completed := false, false
				for !probed || !completed {
					if !probed {
						found, _, err := s.Comm.Iprobe(left, 5)
						if err != nil {
							return err
						}
						probed = found
					}
					if !completed {
						done, _, err := s.Comm.Test(rreq)
						if err != nil {
							return err
						}
						completed = done
					}
				}
				if _, err := s.Comm.Recv(probeBuf, bufN, mpi.Float64, left, 5); err != nil {
					return err
				}
				if err := launch(s, "k_inc", nil, recvBuf); err != nil {
					return err
				}
				if err := launch(s, "k_inc", nil, probeBuf); err != nil {
					return err
				}
				return s.Comm.WaitAll(s1, s2)
			},
		},
	}
}
