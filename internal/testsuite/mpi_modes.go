package testsuite

import (
	"cusango/internal/core"
	"cusango/internal/mpi"
)

// MPI send-mode and completion-variant cases: synchronous-mode sends,
// Waitany completion, and Probe-based receives, each combined with the
// CUDA-side synchronization obligations.

func mpiModeCases() []Case {
	return []Case{
		{
			Name: "mpi-modes/ssend_after_devicesync",
			Doc:  "kernel + deviceSync, then MPI_Ssend (rendezvous send): correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					s.Dev.DeviceSynchronize()
					return s.Comm.Ssend(buf, bufN, mpi.Float64, 1, 0)
				}
				_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0)
				return err
			},
		},
		{
			Name:       "mpi-modes/ssend_nosync",
			Doc:        "kernel still in flight when MPI_Ssend reads the device buffer: race",
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					return s.Comm.Ssend(buf, bufN, mpi.Float64, 1, 0)
				}
				_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0)
				return err
			},
		},
		{
			Name: "mpi-modes/waitany_then_kernel",
			Doc:  "two Irecvs completed via MPI_Waitany; the kernel touches only the completed buffer: correct",
			App: func(s *core.Session) error {
				a, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				b, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := s.Comm.Send(a, bufN, mpi.Float64, 1, 0); err != nil {
						return err
					}
					return s.Comm.Send(b, bufN, mpi.Float64, 1, 1)
				}
				r1, err := s.Comm.Irecv(a, bufN, mpi.Float64, 0, 0)
				if err != nil {
					return err
				}
				r2, err := s.Comm.Irecv(b, bufN, mpi.Float64, 0, 1)
				if err != nil {
					return err
				}
				reqs := []*mpi.Request{r1, r2}
				idx, _, err := s.Comm.Waitany(reqs)
				if err != nil {
					return err
				}
				done := []*mpi.Request{r1, r2}[idx]
				if err := launch(s, "k_inc", nil, done.Buffer()); err != nil {
					return err
				}
				// Complete the other request before finalize.
				other := reqs[1-idx]
				_, err = s.Comm.Wait(other)
				return err
			},
		},
		{
			Name:       "mpi-modes/waitany_wrong_buffer",
			Doc:        "Waitany completed ONE request but the kernel touches the other, still in-flight buffer: race",
			ExpectRace: true,
			App: func(s *core.Session) error {
				a, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				b, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					// Only tag 0 is sent before the kernel side acts; tag 1
					// is held back by a handshake on tag 9.
					if err := s.Comm.Send(a, bufN, mpi.Float64, 1, 0); err != nil {
						return err
					}
					sig := s.HostAllocF64(1)
					if _, err := s.Comm.Recv(sig, 1, mpi.Float64, 1, 9); err != nil {
						return err
					}
					return s.Comm.Send(b, bufN, mpi.Float64, 1, 1)
				}
				r1, err := s.Comm.Irecv(a, bufN, mpi.Float64, 0, 0)
				if err != nil {
					return err
				}
				r2, err := s.Comm.Irecv(b, bufN, mpi.Float64, 0, 1)
				if err != nil {
					return err
				}
				idx, _, err := s.Comm.Waitany([]*mpi.Request{r1, r2})
				if err != nil {
					return err
				}
				_ = idx // deterministically r1: r2's send is gated below
				// BUG: touch the still-pending r2 buffer.
				if err := launch(s, "k_inc", nil, b); err != nil {
					return err
				}
				sig := s.HostAllocF64(1)
				if err := s.Comm.Send(sig, 1, mpi.Float64, 0, 9); err != nil {
					return err
				}
				_, err = s.Comm.Wait(r2)
				return err
			},
		},
		{
			Name: "mpi-modes/probe_recv_kernel",
			Doc:  "MPI_Probe for the envelope, Recv with the probed source/tag, then the kernel: correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					s.Dev.DeviceSynchronize()
					return s.Comm.Send(buf, bufN, mpi.Float64, 1, 42)
				}
				st, err := s.Comm.Probe(mpi.AnySource, mpi.AnyTag)
				if err != nil {
					return err
				}
				if _, err := s.Comm.Recv(buf, st.Count, mpi.Float64, st.Source, st.Tag); err != nil {
					return err
				}
				return launch(s, "k_inc", nil, buf)
			},
		},
		{
			Name: "mpi-modes/iprobe_poll_recv",
			Doc:  "Iprobe polling loop followed by Recv and a dependent kernel: correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					return s.Comm.Send(buf, bufN, mpi.Float64, 1, 0)
				}
				for {
					found, _, err := s.Comm.Iprobe(0, 0)
					if err != nil {
						return err
					}
					if found {
						break
					}
				}
				if _, err := s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0); err != nil {
					return err
				}
				return launch(s, "k_inc", nil, buf)
			},
		},
	}
}
