package testsuite

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cusango/internal/campaign"
	"cusango/internal/tsan"
)

// casesMatching filters the suite by name substring.
func casesMatching(t *testing.T, substr string) []Case {
	t.Helper()
	var kept []Case
	for _, c := range Cases() {
		if strings.Contains(c.Name, substr) {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		t.Fatalf("no case matches %q", substr)
	}
	return kept
}

func canonicalJSONL(t *testing.T, rep *campaign.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSONL(&buf, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStallJobTimeoutByteIdentical is the hung-job acceptance check: a
// chaos job carrying the sched-stall fault never terminates on its
// own; under a supervisor deadline it completes with the deterministic
// timeout record, and the canonical report is byte-identical at -j1
// and -j8 and across repeats.
func TestStallJobTimeoutByteIdentical(t *testing.T) {
	cases := casesMatching(t, "mpi-modes/ssend_after_devicesync")
	jobs := SuiteJobs(cases, []tsan.Engine{tsan.EngineBatched})
	jobs = append(jobs, campaign.Job{
		Kind: KindChaos, Case: cases[0].Name, Engine: tsan.EngineBatched.String(),
		Seed: 1, Faults: "sched-stall@0:r1",
	})

	const deadline = 200 * time.Millisecond
	var reports [][]byte
	for _, workers := range []int{1, 8, 1} {
		exec := campaign.Supervise(Executor(0), campaign.Limits{Timeout: deadline})
		rep := campaign.Run(jobs, exec, campaign.Options{Workers: workers})
		stall := rep.Records[len(rep.Records)-1]
		if stall.Verdict != campaign.VerdictTimeout {
			t.Fatalf("workers=%d: stall job verdict = %s (%s), want timeout",
				workers, stall.Verdict, stall.AppFault)
		}
		if want := "timeout: job exceeded the 200ms deadline"; stall.AppFault != want {
			t.Fatalf("workers=%d: AppFault = %q, want %q", workers, stall.AppFault, want)
		}
		reports = append(reports, canonicalJSONL(t, rep))
	}
	if !bytes.Equal(reports[0], reports[1]) || !bytes.Equal(reports[0], reports[2]) {
		t.Fatal("timeout report bytes differ across worker counts / repeats")
	}
}

// TestStallJobNeverCached: the timeout verdict is a wall-clock fact —
// a warm cache must re-execute the stalled job, not replay the timeout.
func TestStallJobNeverCached(t *testing.T) {
	cases := casesMatching(t, "mpi-modes/ssend_after_devicesync")
	jobs := []campaign.Job{{
		Kind: KindChaos, Case: cases[0].Name, Engine: tsan.EngineBatched.String(),
		Seed: 1, Faults: "sched-stall@0:r1",
	}}
	cache := campaign.NewMemCache()
	exec := campaign.Supervise(Executor(0), campaign.Limits{Timeout: 100 * time.Millisecond})
	for run := 0; run < 2; run++ {
		rep := campaign.Run(jobs, exec, campaign.Options{Workers: 2, Cache: cache, Salt: "s"})
		r := rep.Records[0]
		if r.Verdict != campaign.VerdictTimeout || r.Cached {
			t.Fatalf("run %d: verdict=%s cached=%v, want a fresh timeout each run", run, r.Verdict, r.Cached)
		}
	}
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries after timeout-only runs, want 0", cache.Len())
	}
}

// TestBudgetVerdictDeterministicAndCacheable: -max-steps turns runaway
// jobs into the deterministic "budget" verdict — byte-identical at any
// worker count, cacheable, and keyed by LimitsSalt so results under a
// different budget cannot leak in.
func TestBudgetVerdictDeterministicAndCacheable(t *testing.T) {
	cases := casesMatching(t, "mpi-modes/")
	jobs := SuiteJobs(cases, []tsan.Engine{tsan.EngineBatched})

	const maxSteps = 2
	run := func(workers int, cache *campaign.Cache) *campaign.Report {
		exec := campaign.Supervise(Executor(maxSteps), campaign.Limits{})
		opt := campaign.Options{Workers: workers}
		if cache != nil {
			opt.Cache = cache
			opt.Salt = campaign.LimitsSalt("s", maxSteps)
		}
		return campaign.Run(jobs, exec, opt)
	}

	a := run(1, nil)
	b := run(8, nil)
	if !bytes.Equal(canonicalJSONL(t, a), canonicalJSONL(t, b)) {
		t.Fatal("budget report bytes differ between 1 and 8 workers")
	}
	budgets := 0
	for _, r := range a.Records {
		if r.Verdict == campaign.VerdictBudget {
			budgets++
			if want := "budget: step budget exceeded (max-steps=2)"; r.AppFault != want {
				t.Fatalf("budget AppFault = %q, want %q", r.AppFault, want)
			}
		}
	}
	if budgets == 0 {
		t.Fatal("max-steps=2 tripped no budget verdicts over the mpi-modes suite")
	}

	// Budget verdicts are pure functions of the job: cacheable.
	cache := campaign.NewMemCache()
	cold := run(4, cache)
	warm := run(4, cache)
	if warm.CacheHits != len(jobs) {
		t.Fatalf("warm run: %d cache hits, want %d (budget verdicts must be cached)",
			warm.CacheHits, len(jobs))
	}
	if !bytes.Equal(canonicalJSONL(t, cold), canonicalJSONL(t, warm)) {
		t.Fatal("cached budget report differs from cold run")
	}

	// A different budget is a different cache identity.
	otherExec := campaign.Supervise(Executor(maxSteps+10), campaign.Limits{})
	other := campaign.Run(jobs, otherExec, campaign.Options{
		Workers: 4, Cache: cache, Salt: campaign.LimitsSalt("s", maxSteps+10),
	})
	if other.CacheHits != 0 {
		t.Fatalf("different -max-steps hit the old cache %d times, want 0", other.CacheHits)
	}
}

// TestControlledBudgetDeterministic: under the controlled scheduler the
// step budget meters decision-log length; a budget below a case's
// decision count cuts every schedule short with Outcome.Budget,
// identically across repeats. (A wide-sched case: narrow cases never
// reach a choice point, so their logs stay empty and no budget trips.)
func TestControlledBudgetDeterministic(t *testing.T) {
	c := casesMatching(t, "wide-sched/iprobe_test_ring")[0]
	for run := 0; run < 3; run++ {
		out := RunExploreSchedule(c, nil, ExploreOptions{
			Engine: tsan.EngineBatched,
			Env:    Env{MaxSteps: 2},
		})
		if !out.Budget {
			t.Fatalf("run %d: max-steps=2 did not trip the controller budget", run)
		}
	}
	out := RunExploreSchedule(c, nil, ExploreOptions{
		Engine: tsan.EngineBatched,
		Env:    Env{MaxSteps: 100000},
	})
	if out.Budget {
		t.Fatal("a generous budget tripped")
	}
}
