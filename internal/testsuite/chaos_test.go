package testsuite

import (
	"testing"

	"cusango/internal/faults"
	"cusango/internal/tsan"
)

var bothEngines = []tsan.Engine{tsan.EngineBatched, tsan.EngineSlow}

// TestChaosSoak is the acceptance soak: >= 25 seeded fault schedules x
// both shadow engines over the whole classified suite. Correct cases
// must never produce a race report under injected faults, every error
// must be attributable to an injected fault (directly or as abort
// collateral), and the checker must never crash.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is the long acceptance run")
	}
	seeds := make([]uint64, 25)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	rep := ChaosSoak(seeds, 0.05, bothEngines)
	t.Log(rep)
	for _, v := range rep.Violations {
		t.Error(v)
	}
	if rep.Faulted == 0 {
		t.Fatal("no schedule fired a fault; the soak is vacuous")
	}
	if rep.Degraded > 0 {
		// Not a violation (contained crashes are the design), but worth
		// surfacing: today's fault set should not crash the checker.
		t.Logf("note: %d contained checker crash(es)", rep.Degraded)
	}
}

// TestChaosReproduction: every fault observed in a sampled soak slice
// replays exactly from its (seed, site, occurrence, rank) triple.
func TestChaosReproduction(t *testing.T) {
	cases := Cases()
	reproduced := 0
	for seed := uint64(1); seed <= 6 && reproduced < 12; seed++ {
		plan := faults.Seeded(seed, 0.08)
		for _, c := range cases {
			if reproduced >= 12 {
				break
			}
			v := RunChaosCase(c, plan, tsan.EngineBatched)
			for _, f := range v.Injected {
				if err := ReproduceFault(c, f, tsan.EngineBatched); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
				reproduced++
				break // one fault per (case, seed) keeps the test fast
			}
		}
	}
	if reproduced == 0 {
		t.Fatal("no faults observed to reproduce; test is vacuous")
	}
}

// TestChaosDeterministic: the same (case, plan, engine) run twice fires
// the identical fault sequence and yields the identical verdict.
func TestChaosDeterministic(t *testing.T) {
	plan := faults.Seeded(7, 0.1)
	for _, c := range Cases()[:8] {
		a := RunChaosCase(c, plan, tsan.EngineBatched)
		b := RunChaosCase(c, plan, tsan.EngineBatched)
		if len(a.Injected) != len(b.Injected) || a.Races != b.Races || a.OK() != b.OK() {
			t.Fatalf("%s: nondeterministic chaos run: %v vs %v", c.Name, a, b)
		}
		for i := range a.Injected {
			if a.Injected[i].Spec() != b.Injected[i].Spec() {
				t.Fatalf("%s: fault %d differs: %s vs %s",
					c.Name, i, a.Injected[i].Spec(), b.Injected[i].Spec())
			}
		}
	}
}

// TestChaosNilPlanMatchesBaseline: a nil plan is a plain suite run —
// every case classifies exactly as the baseline expects.
func TestChaosNilPlanMatchesBaseline(t *testing.T) {
	for _, c := range Cases() {
		v := RunChaosCase(c, nil, tsan.EngineBatched)
		if !v.OK() {
			t.Errorf("nil-plan chaos run violated: %v", v)
		}
		if len(v.Injected) != 0 {
			t.Errorf("%s: nil plan injected %v", c.Name, v.Injected)
		}
		if (v.Races > 0) != c.ExpectRace {
			t.Errorf("%s: nil-plan races=%d, expect race=%v", c.Name, v.Races, c.ExpectRace)
		}
	}
}
