package testsuite

import (
	"cusango/internal/core"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

// mpi-to-cuda cases: a non-blocking MPI operation is followed by a
// dependent GPU operation; MPI semantics require completing the request
// before the device touches the buffer (paper §III-D case ii, Fig. 4
// lower half).

// recvThen builds a 2-rank program: rank 1 posts an Irecv into a device
// buffer and runs use before/after waiting; rank 0 sends.
func recvThen(use func(s *core.Session, buf memspace.Addr, wait func() error) error) func(*core.Session) error {
	return func(s *core.Session) error {
		buf, err := s.CudaMallocF64(bufN)
		if err != nil {
			return err
		}
		if s.Rank() == 0 {
			return s.Comm.Send(buf, bufN, mpi.Float64, 1, 0)
		}
		req, err := s.Comm.Irecv(buf, bufN, mpi.Float64, 0, 0)
		if err != nil {
			return err
		}
		waited := false
		wait := func() error {
			waited = true
			_, err := s.Comm.Wait(req)
			return err
		}
		if err := use(s, buf, wait); err != nil {
			return err
		}
		if !waited {
			_, err := s.Comm.Wait(req)
			return err
		}
		return nil
	}
}

func mpiToCUDACases() []Case {
	return []Case{
		{
			Name: "mpi-to-cuda/irecv_wait_kernel",
			Doc:  "MPI_Irecv + MPI_Wait before the consuming kernel (paper Fig. 4 lines 7-9): correct",
			App: recvThen(func(s *core.Session, buf memspace.Addr, wait func() error) error {
				if err := wait(); err != nil {
					return err
				}
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				return launch(s, "k_read", nil, out, buf)
			}),
		},
		{
			Name:       "mpi-to-cuda/irecv_nowait_kernel_read",
			Doc:        "kernel reads the receive buffer before MPI_Wait: race with the in-flight write",
			ExpectRace: true,
			App: recvThen(func(s *core.Session, buf memspace.Addr, wait func() error) error {
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				return launch(s, "k_read", nil, out, buf)
			}),
		},
		{
			Name:       "mpi-to-cuda/irecv_nowait_kernel_write",
			Doc:        "kernel writes the receive buffer before MPI_Wait: write-write race",
			ExpectRace: true,
			App: recvThen(func(s *core.Session, buf memspace.Addr, wait func() error) error {
				return launch(s, "k_write", nil, buf)
			}),
		},
		{
			Name:       "mpi-to-cuda/irecv_nowait_memcpy",
			Doc:        "D2D memcpy out of the receive buffer before MPI_Wait: race (memcpy reads the buffer)",
			ExpectRace: true,
			App: recvThen(func(s *core.Session, buf memspace.Addr, wait func() error) error {
				dst, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				return s.Dev.Memcpy(dst, buf, bufN*8)
			}),
		},
		{
			Name: "mpi-to-cuda/irecv_test_loop_kernel",
			Doc:  "MPI_Test polled to completion counts as the completion call: correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					return s.Comm.Send(buf, bufN, mpi.Float64, 1, 0)
				}
				req, err := s.Comm.Irecv(buf, bufN, mpi.Float64, 0, 0)
				if err != nil {
					return err
				}
				for {
					done, _, err := s.Comm.Test(req)
					if err != nil {
						return err
					}
					if done {
						break
					}
				}
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				return launch(s, "k_read", nil, out, buf)
			},
		},
		{
			Name: "mpi-to-cuda/recv_blocking_kernel",
			Doc:  "blocking MPI_Recv then kernel: program order suffices, correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					return s.Comm.Send(buf, bufN, mpi.Float64, 1, 0)
				}
				if _, err := s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0); err != nil {
					return err
				}
				return launch(s, "k_inc", nil, buf)
			},
		},
		{
			Name: "mpi-to-cuda/isend_nowait_kernel_read",
			Doc:  "kernel READS the buffer an in-flight MPI_Isend also reads: no conflict",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					out, err := s.CudaMallocF64(bufN)
					if err != nil {
						return err
					}
					req, err := s.Comm.Isend(buf, bufN, mpi.Float64, 1, 0)
					if err != nil {
						return err
					}
					if err := launch(s, "k_read", nil, out, buf); err != nil {
						return err
					}
					_, err = s.Comm.Wait(req)
					return err
				}
				_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0)
				return err
			},
		},
		{
			Name:       "mpi-to-cuda/isend_nowait_kernel_write",
			Doc:        "kernel WRITES the buffer an in-flight MPI_Isend reads: race",
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					req, err := s.Comm.Isend(buf, bufN, mpi.Float64, 1, 0)
					if err != nil {
						return err
					}
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					_, err = s.Comm.Wait(req)
					return err
				}
				_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0)
				return err
			},
		},
		{
			Name: "mpi-to-cuda/waitall_two_requests_kernel",
			Doc:  "two Irecvs completed with Waitall before kernels touch both buffers: correct",
			App: func(s *core.Session) error {
				a, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				b, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := s.Comm.Send(a, bufN, mpi.Float64, 1, 0); err != nil {
						return err
					}
					return s.Comm.Send(b, bufN, mpi.Float64, 1, 1)
				}
				r1, err := s.Comm.Irecv(a, bufN, mpi.Float64, 0, 0)
				if err != nil {
					return err
				}
				r2, err := s.Comm.Irecv(b, bufN, mpi.Float64, 0, 1)
				if err != nil {
					return err
				}
				if err := s.Comm.WaitAll(r1, r2); err != nil {
					return err
				}
				if err := launch(s, "k_inc", nil, a); err != nil {
					return err
				}
				return launch(s, "k_inc", nil, b)
			},
		},
		{
			Name:       "mpi-to-cuda/wait_wrong_request",
			Doc:        "two Irecvs, only one waited; kernel touches the unwaited buffer: race",
			ExpectRace: true,
			App: func(s *core.Session) error {
				a, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				b, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := s.Comm.Send(a, bufN, mpi.Float64, 1, 0); err != nil {
						return err
					}
					return s.Comm.Send(b, bufN, mpi.Float64, 1, 1)
				}
				r1, err := s.Comm.Irecv(a, bufN, mpi.Float64, 0, 0)
				if err != nil {
					return err
				}
				r2, err := s.Comm.Irecv(b, bufN, mpi.Float64, 0, 1)
				if err != nil {
					return err
				}
				if _, err := s.Comm.Wait(r1); err != nil {
					return err
				}
				if err := launch(s, "k_inc", nil, b); err != nil { // b not waited!
					return err
				}
				_, err = s.Comm.Wait(r2)
				return err
			},
		},
		{
			Name: "mpi-to-cuda/sendrecv_blocking_kernels",
			Doc:  "blocking Sendrecv between synchronized kernels (the Jacobi pattern): correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				recv, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				peer := 1 - s.Rank()
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				if _, err := s.Comm.Sendrecv(
					buf, bufN, mpi.Float64, peer, 0,
					recv, bufN, mpi.Float64, peer, 0,
				); err != nil {
					return err
				}
				return launch(s, "k_inc", nil, recv)
			},
		},
	}
}
