package testsuite

import (
	"bytes"
	"sync/atomic"
	"testing"

	"cusango/internal/campaign"
)

// fullCampaignJobs is the acceptance workload: full classification +
// chaos schedules + replay parity, both shadow engines.
func fullCampaignJobs(seeds int) []campaign.Job {
	s := make([]uint64, seeds)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return AllJobs(Cases(), s, 0.05, bothEngines)
}

// TestCampaignDeterministicAcrossWorkers: the canonical report is
// byte-identical for 1 and 8 workers over the full suite + chaos +
// replay workload, both engines — the tentpole guarantee.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-campaign determinism is a long acceptance run")
	}
	jobs := fullCampaignJobs(3)
	var reports [2]bytes.Buffer
	for i, workers := range []int{1, 8} {
		rep := campaign.Run(jobs, ExecuteJob, campaign.Options{Workers: workers})
		if err := rep.WriteJSONL(&reports[i], false); err != nil {
			t.Fatal(err)
		}
		if pass, fail, errs := rep.Counts(); fail != 0 || errs != 0 {
			t.Fatalf("workers=%d: pass=%d fail=%d error=%d; findings: %v",
				workers, pass, fail, errs, rep.UniqueFindings())
		}
	}
	if !bytes.Equal(reports[0].Bytes(), reports[1].Bytes()) {
		t.Fatal("canonical campaign report differs between 1 and 8 workers")
	}
}

// TestCampaignWarmCache: a second run against a warm directory cache
// executes zero jobs, reports 100% cache hits, and emits the identical
// canonical report; changing the build salt invalidates everything.
func TestCampaignWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-cache acceptance run executes the suite twice")
	}
	jobs := fullCampaignJobs(1)
	cache, err := campaign.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	exec := func(j campaign.Job) *campaign.Record {
		execs.Add(1)
		return ExecuteJob(j)
	}

	cold := campaign.Run(jobs, exec, campaign.Options{Workers: 8, Cache: cache, Salt: "build-a"})
	if got := execs.Load(); got != int64(len(jobs)) {
		t.Fatalf("cold run executed %d of %d jobs", got, len(jobs))
	}
	warm := campaign.Run(jobs, exec, campaign.Options{Workers: 8, Cache: cache, Salt: "build-a"})
	if got := execs.Load(); got != int64(len(jobs)) {
		t.Fatalf("warm run executed %d jobs, want 0", got-int64(len(jobs)))
	}
	if warm.Executed != 0 || warm.CacheHits != len(jobs) {
		t.Fatalf("warm run: executed=%d cache-hits=%d, want 0/%d", warm.Executed, warm.CacheHits, len(jobs))
	}
	var a, b bytes.Buffer
	if err := cold.WriteJSONL(&a, false); err != nil {
		t.Fatal(err)
	}
	if err := warm.WriteJSONL(&b, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm-cache canonical report differs from cold run")
	}

	// A new build salt must invalidate every entry.
	salted := campaign.Run(jobs, exec, campaign.Options{Workers: 8, Cache: cache, Salt: "build-b"})
	if salted.CacheHits != 0 || salted.Executed != len(jobs) {
		t.Fatalf("salted run: executed=%d cache-hits=%d, want %d/0",
			salted.Executed, salted.CacheHits, len(jobs))
	}
}

// TestSuiteJobsViaCampaign: the campaign suite path classifies every
// case exactly like the direct RunCase path.
func TestSuiteJobsViaCampaign(t *testing.T) {
	jobs := SuiteJobs(Cases(), bothEngines)
	rep := campaign.Run(jobs, ExecuteJob, campaign.Options{})
	if len(rep.Records) != 2*len(Cases()) {
		t.Fatalf("%d records, want %d", len(rep.Records), 2*len(Cases()))
	}
	for _, r := range rep.Records {
		if r.Verdict != campaign.VerdictPass {
			t.Errorf("%s [%s]: %s — %v", r.Case, r.Engine, r.Verdict, r.Findings)
		}
	}
}
