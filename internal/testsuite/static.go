package testsuite

import (
	"fmt"
	"strings"
	"sync"

	"cusango/internal/apps/halo2d"
	"cusango/internal/apps/jacobi"
	"cusango/internal/apps/tealeaf"
	"cusango/internal/campaign"
	"cusango/internal/kir"
	"cusango/internal/kstatic"
)

// The `static` campaign kind: one job per (module, kernel) running the
// static intra-kernel race checker AND its dynamic differential oracle,
// failing only on a soundness violation — static race-free contradicted
// by the oracle, or a static witness the oracle could not reproduce on
// a geometry it actually executed. Jobs are pure functions of the
// module registry (no engines, seeds, or schedules), so results cache
// perfectly and any -j produces byte-identical reports.

// KindStatic is the static-analysis job kind.
const KindStatic = "static"

// staticRegistry names every module the static sweep covers. Order is
// the job enumeration order.
var staticRegistry = []struct {
	name  string
	build func() *kir.Module
}{
	{"suite", Module},
	{"apps/jacobi", jacobi.Module},
	{"apps/tealeaf", tealeaf.Module},
	{"apps/halo2d", halo2d.AppModule},
}

type staticModule struct {
	mod    *kir.Module
	report *kstatic.Report
	err    error
}

// staticModules builds and analyzes every registered module once.
var staticModules = sync.OnceValue(func() map[string]*staticModule {
	out := make(map[string]*staticModule, len(staticRegistry))
	for _, e := range staticRegistry {
		sm := &staticModule{mod: e.build()}
		sm.report, sm.err = kstatic.Analyze(sm.mod)
		out[e.name] = sm
	}
	return out
})

// StaticJobs enumerates one job per kernel of every registered module.
// The case name is "<module>/<kernel>".
func StaticJobs() []campaign.Job {
	var jobs []campaign.Job
	for _, e := range staticRegistry {
		for _, f := range e.build().Kernels() {
			jobs = append(jobs, campaign.Job{Kind: KindStatic, Case: e.name + "/" + f.Name})
		}
	}
	return jobs
}

// execStatic checks one kernel: static verdict, dynamic oracle, and the
// soundness contract between them.
func execStatic(caseName string) *campaign.Record {
	slash := strings.LastIndex(caseName, "/")
	if slash < 0 {
		return errRecord(fmt.Sprintf("static case %q: want <module>/<kernel>", caseName))
	}
	modName, kernel := caseName[:slash], caseName[slash+1:]
	sm := staticModules()[modName]
	if sm == nil {
		return errRecord(fmt.Sprintf("unknown static module %q", modName))
	}
	if sm.err != nil {
		return errRecord(fmt.Sprintf("analyze %q: %v", modName, sm.err))
	}
	kr := sm.report.Kernel(kernel)
	if kr == nil {
		return errRecord(fmt.Sprintf("module %q has no kernel %q", modName, kernel))
	}
	orc, err := kstatic.RunOracle(sm.mod, kernel)
	if err != nil {
		return errRecord(fmt.Sprintf("oracle %s: %v", caseName, err))
	}

	r := &campaign.Record{
		Verdict:       campaign.VerdictPass,
		Races:         len(orc.Races),
		StaticVerdict: kr.Verdict.String(),
		Intervals:     kr.Intervals,
		OracleSkipped: len(orc.Skipped),
	}
	if kr.Witness != nil {
		r.Witness = kr.Witness.String()
	}
	fail := func(detail string) {
		r.Verdict = campaign.VerdictFail
		r.Findings = append(r.Findings,
			campaign.NewFinding("static-soundness", caseName, detail))
	}
	switch kr.Verdict {
	case kstatic.VerdictRaceFree:
		if orc.HasRace() {
			fail(fmt.Sprintf("static race-free but oracle found %d race(s), first: %s",
				len(orc.Races), orc.Races[0]))
		}
	case kstatic.VerdictRace:
		if kr.Witness == nil {
			fail("race verdict without witness")
		} else if orc.CheckedGeom(kr.Witness.Geom) && !orc.HasRace() {
			fail(fmt.Sprintf("static witness %s not reproduced by oracle (checked %v)",
				kr.Witness, orc.Checked))
		}
	}
	return r
}
