package testsuite

import (
	"strings"
	"testing"

	"cusango/internal/cuda"
	"cusango/internal/raceflag"
)

// TestAllCasesClassifiedCorrectly is the reproduction of paper §VI-C:
// "for now, all tests are correctly classified by CuSan".
func TestAllCasesClassifiedCorrectly(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			v := RunCase(c)
			if !v.Pass() {
				t.Fatalf("%s\n  doc: %s\n  expected race=%v issue=%v, got races=%d issues=%v err=%v",
					v, c.Doc, c.ExpectRace, c.ExpectIssue, v.Races, v.Issues, v.Err)
			}
		})
	}
}

func TestSuiteShape(t *testing.T) {
	cases := Cases()
	if len(cases) < 40 {
		t.Fatalf("suite has %d cases, want >= 40 (paper ships 49)", len(cases))
	}
	seen := map[string]bool{}
	categories := map[string]int{}
	var racy, clean int
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Doc == "" {
			t.Errorf("case %q lacks documentation", c.Name)
		}
		idx := strings.IndexByte(c.Name, '/')
		if idx <= 0 {
			t.Errorf("case %q not categorized", c.Name)
			continue
		}
		categories[c.Name[:idx]]++
		if c.ExpectRace {
			racy++
		} else if c.ExpectIssue == nil {
			clean++
		}
	}
	for _, want := range []string{"cuda-to-mpi", "mpi-to-cuda", "mpi-modes", "local", "must"} {
		if categories[want] == 0 {
			t.Errorf("category %q empty", want)
		}
	}
	if racy < 15 || clean < 15 {
		t.Errorf("suite unbalanced: %d racy, %d clean", racy, clean)
	}
}

func TestVerdictString(t *testing.T) {
	v := RunCase(Cases()[0])
	s := v.String()
	if !strings.Contains(s, "CuSanTest ::") || !strings.Contains(s, "PASS") {
		t.Fatalf("verdict string = %q", s)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll duplicates the per-case subtests")
	}
	verdicts := RunAll()
	if len(verdicts) != len(Cases()) {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.Pass() {
			t.Errorf("%s", v)
		}
	}
}

// TestAllCasesClassifiedCorrectlyAsync repeats the whole suite on the
// genuinely asynchronous device executor: interception happens at
// enqueue time in both modes, so every verdict must be identical.
func TestAllCasesClassifiedCorrectlyAsync(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("racy cases execute genuinely concurrently on the async executor")
	}
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			v := RunCaseWith(c, cuda.Config{AsyncStreams: true})
			if !v.Pass() {
				t.Fatalf("async-mode divergence: %s\n  doc: %s", v, c.Doc)
			}
		})
	}
}
