package testsuite

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"cusango/internal/cuda"
	"cusango/internal/raceflag"
	"cusango/internal/tsan"
)

// TestAllCasesClassifiedCorrectly is the reproduction of paper §VI-C:
// "for now, all tests are correctly classified by CuSan".
func TestAllCasesClassifiedCorrectly(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			v := RunCase(c)
			if !v.Pass() {
				t.Fatalf("%s\n  doc: %s\n  expected race=%v issue=%v, got races=%d issues=%v err=%v",
					v, c.Doc, c.ExpectRace, c.ExpectIssue, v.Races, v.Issues, v.Err)
			}
		})
	}
}

func TestSuiteShape(t *testing.T) {
	cases := Cases()
	if len(cases) < 40 {
		t.Fatalf("suite has %d cases, want >= 40 (paper ships 49)", len(cases))
	}
	seen := map[string]bool{}
	categories := map[string]int{}
	var racy, clean int
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Doc == "" {
			t.Errorf("case %q lacks documentation", c.Name)
		}
		idx := strings.IndexByte(c.Name, '/')
		if idx <= 0 {
			t.Errorf("case %q not categorized", c.Name)
			continue
		}
		categories[c.Name[:idx]]++
		if c.ExpectRace {
			racy++
		} else if c.ExpectIssue == nil {
			clean++
		}
	}
	for _, want := range []string{"cuda-to-mpi", "mpi-to-cuda", "mpi-modes", "local", "must"} {
		if categories[want] == 0 {
			t.Errorf("category %q empty", want)
		}
	}
	if racy < 15 || clean < 15 {
		t.Errorf("suite unbalanced: %d racy, %d clean", racy, clean)
	}
}

func TestVerdictString(t *testing.T) {
	v := RunCase(Cases()[0])
	s := v.String()
	if !strings.Contains(s, "CuSanTest ::") || !strings.Contains(s, "PASS") {
		t.Fatalf("verdict string = %q", s)
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll duplicates the per-case subtests")
	}
	verdicts := RunAll()
	if len(verdicts) != len(Cases()) {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.Pass() {
			t.Errorf("%s", v)
		}
	}
}

// TestAllCasesClassifiedCorrectlyAsync repeats the whole suite on the
// genuinely asynchronous device executor: interception happens at
// enqueue time in both modes, so every verdict must be identical.
func TestAllCasesClassifiedCorrectlyAsync(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("racy cases execute genuinely concurrently on the async executor")
	}
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			v := RunCaseWith(c, cuda.Config{AsyncStreams: true})
			if !v.Pass() {
				t.Fatalf("async-mode divergence: %s\n  doc: %s", v, c.Doc)
			}
		})
	}
}

// classification is the comparable projection of a verdict: what the
// tool tells the user, independent of report counts or timing.
func classification(v *Verdict) string {
	kinds := make([]string, 0, len(v.Issues))
	for _, is := range v.Issues {
		kinds = append(kinds, is.Kind.String())
	}
	sort.Strings(kinds)
	return fmt.Sprintf("err=%v racy=%v issues=%v", v.Err != nil, v.Races > 0, kinds)
}

// TestSuiteClassificationParityAcrossEngines runs every case under the
// batched engine and the slow reference walk: the engines must be
// observationally equivalent on real tool runs, not just on the unit
// differential suite — same classification AND same exact race count.
func TestSuiteClassificationParityAcrossEngines(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			b := RunCaseTSan(c, tsan.Config{})
			sl := RunCaseTSan(c, tsan.Config{Engine: tsan.EngineSlow})
			if got, want := classification(b), classification(sl); got != want {
				t.Fatalf("engines diverge:\n  batched: %s\n  slow:    %s", got, want)
			}
			if b.Races != sl.Races {
				t.Fatalf("race counts diverge: batched=%d slow=%d", b.Races, sl.Races)
			}
			if !b.Pass() {
				t.Fatalf("misclassified under both engines: %s", b)
			}
		})
	}
}

// TestSuiteClassificationParityAsyncStreams compares eager vs async
// execution case by case. Exact race counts may differ with timing;
// the classification may not.
func TestSuiteClassificationParityAsyncStreams(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("racy cases execute genuinely concurrently on the async executor")
	}
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			eager := RunCaseWith(c, cuda.Config{AsyncStreams: false})
			async := RunCaseWith(c, cuda.Config{AsyncStreams: true})
			if got, want := classification(async), classification(eager); got != want {
				t.Fatalf("async executor diverges from eager:\n  eager: %s\n  async: %s\n  doc: %s",
					want, got, c.Doc)
			}
		})
	}
}
