package testsuite

import (
	"cusango/internal/core"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
	"cusango/internal/must"
)

// MUST-check cases: datatype/extent/request findings from the TypeART
// integration (paper §II-C) and collective patterns.

func mustCheckCases() []Case {
	return []Case{
		{
			Name:        "must/send_type_mismatch",
			Doc:         "float64 buffer communicated as MPI_INT: TypeART datatype mismatch",
			ExpectIssue: issueOf(must.IssueTypeMismatch),
			App: func(s *core.Session) error {
				buf := s.HostAllocF64(bufN)
				if s.Rank() == 0 {
					return s.Comm.Send(buf, bufN, mpi.Int32, 1, 0)
				}
				_, err := s.Comm.Recv(buf, bufN, mpi.Int32, 0, 0)
				return err
			},
		},
		{
			Name:        "must/send_count_exceeds_allocation",
			Doc:         "count larger than the allocation: buffer-too-small finding",
			ExpectIssue: issueOf(must.IssueBufferTooSmall),
			App: func(s *core.Session) error {
				small := s.HostAllocF64(4)
				big := s.HostAllocF64(bufN)
				if s.Rank() == 0 {
					// The library itself also rejects the out-of-bounds read;
					// the MUST finding fires first at interception.
					_ = s.Comm.Send(small, bufN, mpi.Float64, 1, 0)
					return s.Comm.Send(big, bufN, mpi.Float64, 1, 0)
				}
				_, err := s.Comm.Recv(big, bufN, mpi.Float64, 0, 0)
				return err
			},
		},
		{
			Name:        "must/recv_offset_extent",
			Doc:         "receive posted at an interior pointer with too large a count: extent finding",
			ExpectIssue: issueOf(must.IssueBufferTooSmall),
			App: func(s *core.Session) error {
				buf := s.HostAllocF64(bufN)
				if s.Rank() == 0 {
					return s.Comm.Send(buf, 4, mpi.Float64, 1, 0)
				}
				// Posting bufN elements starting at element bufN/2 overruns.
				half := buf + memspace.Addr(8*(bufN/2))
				_, err := s.Comm.Recv(half, bufN, mpi.Float64, 0, 0)
				_ = err // the transfer itself fits (4 elements); the finding is what matters
				return nil
			},
		},
		{
			Name:        "must/request_leak",
			Doc:         "Irecv never completed before MPI_Finalize: request-leak finding",
			ExpectIssue: issueOf(must.IssueRequestLeak),
			App: func(s *core.Session) error {
				buf := s.HostAllocF64(bufN)
				if s.Rank() == 0 {
					if _, err := s.Comm.Irecv(buf, bufN, mpi.Float64, 1, 0); err != nil {
						return err
					}
					return nil // missing MPI_Wait; Finalize reports the leak
				}
				return s.Comm.Send(buf, bufN, mpi.Float64, 0, 0)
			},
		},
		{
			Name: "must/allreduce_device_synced",
			Doc:  "Allreduce of a device buffer after deviceSynchronize: correct",
			App: func(s *core.Session) error {
				send, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				recv, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if err := launch(s, "k_write", nil, send); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				return s.Comm.Allreduce(send, recv, bufN, mpi.Float64, mpi.OpSum)
			},
		},
		{
			Name:       "must/allreduce_device_unsynced",
			Doc:        "Allreduce reads a device buffer a kernel is still writing: race",
			ExpectRace: true,
			App: func(s *core.Session) error {
				send, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				recv, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if err := launch(s, "k_write", nil, send); err != nil {
					return err
				}
				return s.Comm.Allreduce(send, recv, bufN, mpi.Float64, mpi.OpSum)
			},
		},
		{
			Name: "must/bcast_device_synced",
			Doc:  "Bcast of a device buffer, root synchronized: correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					s.Dev.DeviceSynchronize()
				}
				if err := s.Comm.Bcast(buf, bufN, mpi.Float64, 0); err != nil {
					return err
				}
				// Non-roots may use the data on the device right away:
				// the collective completed locally.
				if s.Rank() != 0 {
					return launch(s, "k_inc", nil, buf)
				}
				return nil
			},
		},
		{
			Name:       "must/bcast_recv_buffer_kernel_race",
			Doc:        "kernel writes the Bcast destination concurrently on a non-root: race",
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				st := s.Dev.StreamCreate(true)
				if s.Rank() == 0 {
					s.Dev.DeviceSynchronize()
					return s.Comm.Bcast(buf, bufN, mpi.Float64, 0)
				}
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				// BUG: no sync; Bcast writes the same device buffer.
				return s.Comm.Bcast(buf, bufN, mpi.Float64, 0)
			},
		},
	}
}
