package testsuite

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/explore"
	"cusango/internal/sched"
	"cusango/internal/tsan"
)

// Systematic schedule exploration over the classified suite: every case
// runs under a controlled scheduler (internal/sched) and the explorer
// (internal/explore) enumerates its completion schedules. The verdict
// upgrades the chaos soak's "no race found on the schedules we ran" to
// "race-free across all N schedules" for correct cases, and demands a
// witness schedule (replayable from its spec) for every known-racy one.

// ExploreOptions configures one case exploration.
type ExploreOptions struct {
	// Engine selects the shadow engine (default batched).
	Engine tsan.Engine
	// Budget caps executed schedules (0 = DefaultExploreBudget).
	Budget int
	// Bound, when > 0, bounds non-default choices per schedule
	// (preemption bound); bounded runs may be incomplete.
	Bound int
	// Naive disables DPOR pruning (differential testing).
	Naive bool
	// Env supervises every schedule execution: Ctx cancellation tears a
	// run down (watchdog), MaxSteps caps each schedule's decision log
	// (the controlled-run logical step budget).
	Env Env
}

// DefaultExploreBudget is plenty for every suite case (the largest
// suite schedule space is far below it) while keeping a runaway
// exploration bounded.
const DefaultExploreBudget = 512

// naiveDeferBudget bounds consecutive no-activity poll defers in naive
// mode so full enumeration of poll loops stays finite.
const naiveDeferBudget = 2

// ExploreVerdict is the outcome of exploring one case.
type ExploreVerdict struct {
	Case   Case
	Engine tsan.Engine
	Result explore.Result
	// NeedsExploration marks a known-racy case whose default schedule is
	// race-free: only systematic exploration (or lucky timing) exposes
	// the race, so single-schedule modalities under-approximate it.
	NeedsExploration bool
	// ReplayOK reports that the minimal racy schedule replayed
	// byte-identically (same decision log, same races) twice.
	ReplayOK bool
	// Violations are trust failures; empty means the exploration verdict
	// matches the case's classification.
	Violations []string
}

// OK reports whether exploration agreed with the classification.
func (v *ExploreVerdict) OK() bool { return len(v.Violations) == 0 }

func (v *ExploreVerdict) String() string {
	status := "OK"
	if !v.OK() {
		status = "VIOLATION"
	}
	return fmt.Sprintf("%s: explore engine=%s :: %s (%s)", status, v.Engine, v.Case.Name, v.Result.String())
}

// RunExploreSchedule executes one case under one schedule prefix and
// returns the explorer outcome. It is the single-schedule primitive
// behind both exploration and `cusan-run -schedule` replay.
func RunExploreSchedule(c Case, prefix []sched.Choice, opt ExploreOptions) explore.Outcome {
	ranks := c.Ranks
	if ranks == 0 {
		ranks = 2
	}
	rep := sched.NewReplayer(prefix)
	ctl := sched.NewController(ranks, rep)
	if opt.Naive {
		ctl.SetDeferBudget(naiveDeferBudget)
	}
	if opt.Env.MaxSteps > 0 {
		ctl.SetStepBudget(int(opt.Env.MaxSteps))
	}
	res, err := core.Run(core.Config{
		Flavor:  core.MUSTCuSan,
		Ranks:   ranks,
		Module:  Module(),
		TSanCfg: tsan.Config{Engine: opt.Engine},
		Sched:   ctl,
		Ctx:     opt.Env.Ctx,
	}, c.App)
	out := explore.Outcome{
		Log:    ctl.Log(),
		Acts:   ctl.Acts(),
		Forced: ctl.Forced(),
		Stuck:  ctl.Stuck(),
		Budget: ctl.BudgetHit(),
	}
	switch {
	case err != nil:
		out.Err = err
	case rep.Err() != nil:
		out.Err = rep.Err()
	case out.Stuck || out.Budget:
		// The controller tore this schedule down deliberately (proven
		// deadlock or step budget); rank errors are the teardown, not
		// failures.
	default:
		if ferr := res.FirstError(); ferr != nil {
			out.Err = ferr
		}
	}
	if res != nil {
		out.Races = res.TotalRaces()
	}
	return out
}

// ExploreCase enumerates one case's schedule space and checks the
// verdict against its classification.
func ExploreCase(c Case, opt ExploreOptions) *ExploreVerdict {
	budget := opt.Budget
	if budget == 0 {
		budget = DefaultExploreBudget
	}
	v := &ExploreVerdict{Case: c, Engine: opt.Engine}
	v.Result = explore.Run(explore.Options{
		MaxSchedules:    budget,
		PreemptionBound: opt.Bound,
		Naive:           opt.Naive,
		DeferBudget:     naiveDeferBudget,
	}, func(prefix []sched.Choice) explore.Outcome {
		return RunExploreSchedule(c, prefix, opt)
	})
	r := &v.Result

	for _, e := range r.Errs {
		v.Violations = append(v.Violations, "explore error: "+e)
	}
	if r.Stuck > 0 {
		v.Violations = append(v.Violations,
			fmt.Sprintf("deadlock: %d schedule(s) got stuck on a deadlock-free case", r.Stuck))
	}
	if c.ExpectRace {
		v.NeedsExploration = r.DefaultRaces == 0 && r.Racy > 0
		if r.Racy == 0 {
			kind := "explore-missed-race"
			if !r.Complete {
				kind = "explore-budget-exhausted"
			}
			v.Violations = append(v.Violations, fmt.Sprintf(
				"%s: known-racy case has no racy schedule in %d explored", kind, r.Explored))
		}
	} else if r.Racy > 0 {
		v.Violations = append(v.Violations, fmt.Sprintf(
			"explore-false-positive: correct case races on %d/%d schedules (minimal %q)",
			r.Racy, r.Explored, r.MinRacySpec))
	}

	// Replay self-check: the minimal racy schedule must reproduce
	// byte-identically from its spec — same decision log, same races.
	if r.MinRacySpec != "" {
		prefix, err := sched.ParseSpec(r.MinRacySpec)
		if err != nil {
			v.Violations = append(v.Violations, "explore-replay-divergence: unparseable spec: "+err.Error())
			return v
		}
		a := RunExploreSchedule(c, prefix, opt)
		b := RunExploreSchedule(c, prefix, opt)
		sa, sb := sched.FormatSpec(a.Log), sched.FormatSpec(b.Log)
		v.ReplayOK = a.Races > 0 && a.Races == b.Races && sa == r.MinRacySpec && sb == r.MinRacySpec &&
			a.Err == nil && b.Err == nil
		if !v.ReplayOK {
			v.Violations = append(v.Violations, fmt.Sprintf(
				"explore-replay-divergence: spec %q replayed as %q/%q with races %d/%d (want > 0, identical)",
				r.MinRacySpec, sa, sb, a.Races, b.Races))
		}
	}
	return v
}
