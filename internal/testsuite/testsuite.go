// Package testsuite is the cusan-tests analog (paper §VI-C): a suite of
// small-scale CUDA-aware MPI programs, manually classified as correct or
// incorrect (containing data races or MPI usage errors), used to (i)
// verify the tool's detection capabilities and (ii) document the
// supported CUDA features and their modeled behaviour.
//
// Every case runs under the full MUST & CuSan flavor; the expected
// verdict is part of the case. The paper reports all 49 of its lit tests
// correctly classified; this suite plays the same role here, with the
// same category layout (cuda-to-mpi, mpi-to-cuda, plus local CUDA
// synchronization and MUST-check categories).
package testsuite

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/cuda"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/must"
	"cusango/internal/tsan"
)

// Case is one classified mini-program.
type Case struct {
	// Name is category/test, e.g. "cuda-to-mpi/send_default_nosync".
	Name string
	// Doc says what behaviour the case pins down.
	Doc string
	// Ranks is the world size (default 2).
	Ranks int
	// ExpectRace marks cases that must be flagged by the race analysis.
	ExpectRace bool
	// ExpectIssue, when non-nil, requires a MUST finding of this kind.
	ExpectIssue *must.IssueKind
	// App is the program body, run on every rank.
	App func(s *core.Session) error
}

const bufN = 64 // elements per test buffer

// Module builds the kernels shared by all cases.
func Module() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("k_write", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("buf"), i, e.ToFloat(i))
		})
	}))
	m.Add(kir.KernelFunc("k_read", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("out"), i, e.LoadIdx(e.Arg("buf"), i))
		})
	}))
	m.Add(kir.KernelFunc("k_inc", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			p := e.GEP(e.Arg("buf"), i)
			e.Store(p, e.Add(e.Load(p), e.ConstF(1)))
		})
	}))
	return m
}

// helpers shared by case bodies ------------------------------------------

func launch(s *core.Session, kernel string, stream *cuda.Stream, ptrs ...memspace.Addr) error {
	args := make([]kinterp.Arg, 0, len(ptrs)+1)
	for _, p := range ptrs {
		args = append(args, kinterp.Ptr(p))
	}
	args = append(args, kinterp.Int(bufN))
	return s.Dev.LaunchKernel(kernel, kinterp.Dim(1), kinterp.Dim(bufN), args, stream)
}

// Verdict is the outcome of running one case.
type Verdict struct {
	Case   Case
	Races  int64
	Issues []*must.Issue
	Err    error
}

// Pass reports whether the observed behaviour matches the expectation.
func (v *Verdict) Pass() bool {
	if v.Err != nil {
		return false
	}
	if (v.Races > 0) != v.Case.ExpectRace {
		return false
	}
	if v.Case.ExpectIssue != nil {
		found := false
		for _, is := range v.Issues {
			if is.Kind == *v.Case.ExpectIssue {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (v *Verdict) String() string {
	status := "PASS"
	if !v.Pass() {
		status = "FAIL"
	}
	detail := ""
	if v.Err != nil {
		detail = fmt.Sprintf(" err=%v", v.Err)
	}
	return fmt.Sprintf("%s: CuSanTest :: %s (races=%d issues=%d%s)",
		status, v.Case.Name, v.Races, len(v.Issues), detail)
}

// RunCase executes one case under the full MUST & CuSan configuration
// with the default (eager) device.
func RunCase(c Case) *Verdict {
	return RunCaseWith(c, cuda.Config{})
}

// RunCaseWith executes one case with an explicit device configuration —
// the async-streams pass runs the identical suite on the genuinely
// asynchronous executor and must produce identical verdicts (the
// tooling's view is enqueue-time interception in both modes).
func RunCaseWith(c Case, cudaCfg cuda.Config) *Verdict {
	return runCase(c, cudaCfg, tsan.Config{}, Env{})
}

// RunCaseTSan executes one case with an explicit sanitizer
// configuration — the engine-differential pass runs the identical
// suite under the batched and the slow reference shadow engines and
// must produce identical verdicts.
func RunCaseTSan(c Case, tcfg tsan.Config) *Verdict {
	return runCase(c, cuda.Config{}, tcfg, Env{})
}

func runCase(c Case, cudaCfg cuda.Config, tcfg tsan.Config, env Env) *Verdict {
	ranks := c.Ranks
	if ranks == 0 {
		ranks = 2
	}
	v := &Verdict{Case: c}
	res, err := core.Run(core.Config{
		Flavor:   core.MUSTCuSan,
		Ranks:    ranks,
		Module:   Module(),
		Cuda:     cudaCfg,
		TSanCfg:  tcfg,
		Ctx:      env.Ctx,
		MaxSteps: env.MaxSteps,
	}, c.App)
	if err != nil {
		v.Err = err
		return v
	}
	if err := res.FirstError(); err != nil {
		v.Err = err
		return v
	}
	v.Races = res.TotalRaces()
	for i := range res.Ranks {
		v.Issues = append(v.Issues, res.Ranks[i].Issues...)
	}
	return v
}

// RunAll executes every case and returns the verdicts in order.
func RunAll() []*Verdict {
	cases := Cases()
	out := make([]*Verdict, len(cases))
	for i, c := range cases {
		out[i] = RunCase(c)
	}
	return out
}

// Cases returns the full classified suite.
func Cases() []Case {
	var all []Case
	all = append(all, cudaToMPICases()...)
	all = append(all, mpiToCUDACases()...)
	all = append(all, mpiModeCases()...)
	all = append(all, wideScheduleCases()...)
	all = append(all, localCUDACases()...)
	all = append(all, mustCheckCases()...)
	return all
}

func issueOf(k must.IssueKind) *must.IssueKind { return &k }
