package testsuite

import (
	"context"
	"errors"
	"fmt"

	"cusango/internal/campaign"
	"cusango/internal/mpi"
	"cusango/internal/sched"
)

// Supervision adapter: Env threads the campaign supervisor's controls
// (watchdog context, logical step budget) into every modality's core
// run, and Executor is the context-aware job executor the supervisor
// wraps (campaign.Supervise) so hung jobs can be torn down and budget
// overruns classified deterministically.

// Env carries the supervision controls for one job execution.
type Env struct {
	// Ctx, when non-nil, tears the run down when cancelled (the
	// wall-clock watchdog). A torn-down run reports a timeout record —
	// a wall-clock fact, never cached.
	Ctx context.Context
	// MaxSteps, when > 0, caps the run's logical steps: MPI operations
	// started per rank on free runs, controller decisions on controlled
	// ones. Exceeding it is a deterministic "budget" verdict — a pure
	// function of the job, byte-identical at any worker count.
	MaxSteps int64
}

// Executor returns a context-aware campaign executor over ExecuteJob,
// suitable for campaign.Supervise: the context is the per-attempt
// deadline and maxSteps the logical step budget applied to every job.
func Executor(maxSteps int64) func(ctx context.Context, j campaign.Job) *campaign.Record {
	return func(ctx context.Context, j campaign.Job) *campaign.Record {
		return executeJob(j, Env{Ctx: ctx, MaxSteps: maxSteps})
	}
}

// budgetClass reports whether a rank error is the step budget firing —
// either the free-run per-rank MPI operation cap or the controlled
// scheduler's decision-log cap.
func budgetClass(err error) bool {
	return errors.Is(err, mpi.ErrStepBudget) || errors.Is(err, sched.ErrBudget)
}

// budgetRecord is the canonical record for a job that exceeded its
// step budget: deterministic in the job identity (and therefore
// cacheable), mentioning only the configured cap.
func budgetRecord(maxSteps int64) *campaign.Record {
	return &campaign.Record{
		Verdict:  campaign.VerdictBudget,
		AppFault: fmt.Sprintf("budget: step budget exceeded (max-steps=%d)", maxSteps),
	}
}
