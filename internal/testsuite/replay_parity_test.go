package testsuite

import (
	"testing"

	"cusango/internal/campaign"
	"cusango/internal/tsan"
)

// TestReplayParity records every suite case and replays the traces
// offline, requiring identical classification: same pass/fail verdict,
// same total race count, and the same multiset of MUST finding kinds.
// This is the determinism guarantee of the trace subsystem, asserted
// over the full feature surface the suite covers, under both shadow
// engines. The sweep dispatches through the campaign engine — parity
// checking is embarrassingly parallel — and any divergence surfaces
// as a replay-parity finding on the job record.
func TestReplayParity(t *testing.T) {
	jobs := ReplayJobs(Cases(), bothEngines)
	rep := campaign.Run(jobs, ExecuteJob, campaign.Options{})
	if len(rep.Records) != len(jobs) {
		t.Fatalf("%d records for %d jobs", len(rep.Records), len(jobs))
	}
	for _, r := range rep.Records {
		if r.Verdict != campaign.VerdictPass {
			t.Errorf("%s [%s]: %s", r.Case, r.Engine, r.Verdict)
			for _, f := range r.Findings {
				t.Errorf("  [%s] %s: %s", f.FP, f.Kind, f.Detail)
			}
			if r.AppFault != "" {
				t.Errorf("  app fault: %s", r.AppFault)
			}
		}
	}
}

// TestRecordedVerdictsMatchUnrecorded guards against the observer
// effect: running a case with recording enabled must not change its
// classification relative to the plain suite run.
func TestRecordedVerdictsMatchUnrecorded(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			plain := RunCase(c)
			recorded, _, err := RecordCase(c, tsan.Config{})
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			if plain.Races != recorded.Races {
				t.Errorf("race count: plain %d, recorded %d", plain.Races, recorded.Races)
			}
			if plain.Pass() != recorded.Pass() {
				t.Errorf("verdict: plain pass=%v, recorded pass=%v", plain.Pass(), recorded.Pass())
			}
		})
	}
}
