package testsuite

import (
	"fmt"
	"sort"
	"testing"

	"cusango/internal/must"
	"cusango/internal/tsan"
)

// issueKeys reduces MUST findings to comparable, order-independent
// (kind, call) pairs. Detail strings are excluded: the request-leak
// detail joins outstanding requests in map order, which is not
// deterministic for multiple leaks — but the set of findings is.
func issueKeys(issues []*must.Issue) []string {
	keys := make([]string, len(issues))
	for i, is := range issues {
		keys[i] = fmt.Sprintf("%s/%s", is.Kind, is.Call)
	}
	sort.Strings(keys)
	return keys
}

// TestReplayParity records every suite case and replays the traces
// offline, requiring identical classification: same pass/fail verdict,
// same total race count, and the same multiset of MUST finding kinds.
// This is the determinism guarantee of the trace subsystem, asserted
// over the full feature surface the suite covers, under both shadow
// engines.
func TestReplayParity(t *testing.T) {
	engines := []struct {
		name string
		cfg  tsan.Config
	}{
		{"fast", tsan.Config{Engine: tsan.EngineBatched}},
		{"slow", tsan.Config{Engine: tsan.EngineSlow}},
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			for _, c := range Cases() {
				c := c
				t.Run(c.Name, func(t *testing.T) {
					live, blobs, err := RecordCase(c, eng.cfg)
					if err != nil {
						t.Fatalf("record: %v", err)
					}
					replayed, err := ReplayTraces(c, blobs, eng.cfg)
					if err != nil {
						t.Fatalf("replay: %v", err)
					}
					if live.Races != replayed.Races {
						t.Errorf("race count: live %d, replayed %d", live.Races, replayed.Races)
					}
					lk, rk := issueKeys(live.Issues), issueKeys(replayed.Issues)
					if len(lk) != len(rk) {
						t.Fatalf("issues: live %v, replayed %v", lk, rk)
					}
					for i := range lk {
						if lk[i] != rk[i] {
							t.Errorf("issue %d: live %q, replayed %q", i, lk[i], rk[i])
						}
					}
					if live.Pass() != replayed.Pass() {
						t.Errorf("verdict: live pass=%v, replayed pass=%v", live.Pass(), replayed.Pass())
					}
					if !live.Pass() {
						t.Errorf("live run itself failed expectation: %s", live)
					}
				})
			}
		})
	}
}

// TestRecordedVerdictsMatchUnrecorded guards against the observer
// effect: running a case with recording enabled must not change its
// classification relative to the plain suite run.
func TestRecordedVerdictsMatchUnrecorded(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			plain := RunCase(c)
			recorded, _, err := RecordCase(c, tsan.Config{})
			if err != nil {
				t.Fatalf("record: %v", err)
			}
			if plain.Races != recorded.Races {
				t.Errorf("race count: plain %d, recorded %d", plain.Races, recorded.Races)
			}
			if plain.Pass() != recorded.Pass() {
				t.Errorf("verdict: plain pass=%v, recorded pass=%v", plain.Pass(), recorded.Pass())
			}
		})
	}
}
