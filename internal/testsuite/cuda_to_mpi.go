package testsuite

import (
	"cusango/internal/core"
	"cusango/internal/memspace"
	"cusango/internal/mpi"
)

// cuda-to-mpi cases: a device operation produces data that a dependent
// MPI call communicates; the question is whether the required explicit
// synchronization is present (paper §III-D case i, Fig. 4 upper half).

// sendAfter builds a 2-rank program: rank 0 runs prepare against a
// device buffer and then sends it; rank 1 receives into its own device
// buffer.
func sendAfter(prepare func(s *core.Session, buf memspace.Addr) error) func(*core.Session) error {
	return func(s *core.Session) error {
		buf, err := s.CudaMallocF64(bufN)
		if err != nil {
			return err
		}
		if s.Rank() == 0 {
			if err := prepare(s, buf); err != nil {
				return err
			}
			return s.Comm.Send(buf, bufN, mpi.Float64, 1, 0)
		}
		_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0)
		return err
	}
}

func cudaToMPICases() []Case {
	return []Case{
		{
			Name: "cuda-to-mpi/send_default_devicesync",
			Doc:  "kernel on default stream + cudaDeviceSynchronize before MPI_Send (paper Fig. 4): correct",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				return nil
			}),
		},
		{
			Name:       "cuda-to-mpi/send_default_nosync",
			Doc:        "kernel on default stream, NO synchronization before MPI_Send: data race",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				return launch(s, "k_write", nil, buf)
			}),
		},
		{
			Name: "cuda-to-mpi/send_stream_streamsync",
			Doc:  "kernel on user stream + cudaStreamSynchronize: correct",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true)
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				return s.Dev.StreamSynchronize(st)
			}),
		},
		{
			Name:       "cuda-to-mpi/send_stream_nosync",
			Doc:        "kernel on user stream, no sync: data race",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true)
				return launch(s, "k_write", st, buf)
			}),
		},
		{
			Name:       "cuda-to-mpi/send_wrong_stream_sync",
			Doc:        "kernel on stream A, synchronize stream B (both non-blocking): race persists",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				a := s.Dev.StreamCreate(true)
				b := s.Dev.StreamCreate(true)
				if err := launch(s, "k_write", a, buf); err != nil {
					return err
				}
				return s.Dev.StreamSynchronize(b)
			}),
		},
		{
			Name: "cuda-to-mpi/send_stream_devicesync",
			Doc:  "kernel on user stream + cudaDeviceSynchronize (syncs all streams): correct",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true)
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				return nil
			}),
		},
		{
			Name: "cuda-to-mpi/send_event_eventsync",
			Doc:  "kernel, cudaEventRecord, cudaEventSynchronize: correct",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true)
				ev := s.Dev.EventCreate()
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				if err := s.Dev.EventRecord(ev, st); err != nil {
					return err
				}
				return s.Dev.EventSynchronize(ev)
			}),
		},
		{
			Name:       "cuda-to-mpi/send_event_record_only",
			Doc:        "cudaEventRecord without a matching synchronize: race persists",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true)
				ev := s.Dev.EventCreate()
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				return s.Dev.EventRecord(ev, st)
			}),
		},
		{
			Name:       "cuda-to-mpi/send_event_recorded_too_early",
			Doc:        "event recorded BEFORE the kernel, then synchronized: does not cover the kernel",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true)
				ev := s.Dev.EventCreate()
				if err := s.Dev.EventRecord(ev, st); err != nil {
					return err
				}
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				return s.Dev.EventSynchronize(ev)
			}),
		},
		{
			Name: "cuda-to-mpi/send_streamquery_busywait",
			Doc:  "cudaStreamQuery used as busy-wait counts as synchronization (paper §III-B1)",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true)
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				for {
					done, err := s.Dev.StreamQuery(st)
					if err != nil {
						return err
					}
					if done {
						return nil
					}
				}
			}),
		},
		{
			Name: "cuda-to-mpi/send_memcpy_implicit_sync",
			Doc:  "synchronous D2H cudaMemcpy after the kernel implicitly synchronizes the host: correct",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				stage := s.HostAllocF64(bufN)
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				return s.Dev.Memcpy(stage, buf, bufN*8)
			}),
		},
		{
			Name:       "cuda-to-mpi/send_memcpyasync_no_sync",
			Doc:        "cudaMemcpyAsync is asynchronous w.r.t. the host: race persists",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				stage := s.HostAllocF64(bufN)
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				return s.Dev.MemcpyAsync(stage, buf, bufN*8, nil)
			}),
		},
		{
			Name: "cuda-to-mpi/send_free_implicit_sync",
			Doc:  "cudaFree synchronizes the host with all streams: correct",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				other, err := s.CudaMallocF64(4)
				if err != nil {
					return err
				}
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				return s.Dev.Free(other)
			}),
		},
		{
			Name:       "cuda-to-mpi/send_freeasync_no_sync",
			Doc:        "cudaFreeAsync does NOT synchronize the host: race persists",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				other, err := s.CudaMallocF64(4)
				if err != nil {
					return err
				}
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				return s.Dev.FreeAsync(other, nil)
			}),
		},
		{
			Name: "cuda-to-mpi/send_kernel_read_only",
			Doc:  "kernel only READS the send buffer; MPI_Send also reads: no conflict even unsynchronized",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				return launch(s, "k_read", nil, out, buf)
			}),
		},
		{
			Name:       "cuda-to-mpi/recv_kernel_read_unsynced",
			Doc:        "kernel reads the buffer while a blocking MPI_Recv writes it: write-read race",
			ExpectRace: true,
			Ranks:      2,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					out, err := s.CudaMallocF64(bufN)
					if err != nil {
						return err
					}
					if err := launch(s, "k_read", s.Dev.StreamCreate(true), out, buf); err != nil {
						return err
					}
					_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 1, 0)
					return err
				}
				return s.Comm.Send(buf, bufN, mpi.Float64, 0, 0)
			},
		},
		{
			Name: "cuda-to-mpi/send_legacy_default_covers_blocking_stream",
			Doc:  "kernel on a BLOCKING user stream, host syncs the DEFAULT stream: legacy barrier covers it (paper Fig. 3)",
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(false) // blocking
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				return s.Dev.StreamSynchronize(s.Dev.DefaultStream())
			}),
		},
		{
			Name:       "cuda-to-mpi/send_legacy_nonblocking_not_covered",
			Doc:        "kernel on a NON-BLOCKING stream is exempt from legacy barriers: default-stream sync does not cover it",
			ExpectRace: true,
			App: sendAfter(func(s *core.Session, buf memspace.Addr) error {
				st := s.Dev.StreamCreate(true) // non-blocking
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				return s.Dev.StreamSynchronize(s.Dev.DefaultStream())
			}),
		},
		{
			Name: "cuda-to-mpi/isend_devicesync_wait",
			Doc:  "kernel + deviceSync, then MPI_Isend/MPI_Wait: correct",
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					s.Dev.DeviceSynchronize()
					req, err := s.Comm.Isend(buf, bufN, mpi.Float64, 1, 0)
					if err != nil {
						return err
					}
					_, err = s.Comm.Wait(req)
					return err
				}
				_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0)
				return err
			},
		},
		{
			Name:       "cuda-to-mpi/isend_nosync",
			Doc:        "kernel write concurrent with MPI_Isend's buffer read: race",
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if s.Rank() == 0 {
					if err := launch(s, "k_write", nil, buf); err != nil {
						return err
					}
					req, err := s.Comm.Isend(buf, bufN, mpi.Float64, 1, 0)
					if err != nil {
						return err
					}
					_, err = s.Comm.Wait(req)
					return err
				}
				_, err = s.Comm.Recv(buf, bufN, mpi.Float64, 0, 0)
				return err
			},
		},
	}
}
