package testsuite

import (
	"cusango/internal/core"
)

// Local CUDA cases: host/device and stream/stream interactions without
// MPI — CuSan also finds plain CUDA races such as unsynchronized managed
// memory access (paper §VI-E).

func localCUDACases() []Case {
	return []Case{
		{
			Name:       "local/managed_host_read_nosync",
			Doc:        "host reads managed memory while a kernel writes it, no sync: race (paper §III-C)",
			Ranks:      1,
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.ManagedAllocF64(bufN)
				if err != nil {
					return err
				}
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				_ = s.LoadF64(buf)
				return nil
			},
		},
		{
			Name:  "local/managed_host_read_devicesync",
			Doc:   "host reads managed memory after cudaDeviceSynchronize: correct",
			Ranks: 1,
			App: func(s *core.Session) error {
				buf, err := s.ManagedAllocF64(bufN)
				if err != nil {
					return err
				}
				if err := launch(s, "k_write", nil, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				_ = s.LoadF64(buf)
				return nil
			},
		},
		{
			Name:  "local/managed_host_write_before_kernel",
			Doc:   "host writes managed memory BEFORE the launch; launch order makes it visible: correct",
			Ranks: 1,
			App: func(s *core.Session) error {
				buf, err := s.ManagedAllocF64(bufN)
				if err != nil {
					return err
				}
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				s.StoreF64(buf, 4.2)
				return launch(s, "k_read", nil, out, buf)
			},
		},
		{
			Name:       "local/pinned_host_write_during_async_h2d",
			Doc:        "host writes the pinned source of an in-flight cudaMemcpyAsync: race",
			Ranks:      1,
			ExpectRace: true,
			App: func(s *core.Session) error {
				src, err := s.PinnedAllocF64(bufN)
				if err != nil {
					return err
				}
				dst, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				if err := s.Dev.MemcpyAsync(dst, src, bufN*8, nil); err != nil {
					return err
				}
				s.StoreF64(src, 1.0)
				return nil
			},
		},
		{
			Name:  "local/pinned_host_write_after_streamsync",
			Doc:   "async H2D copy completed with streamSynchronize before the host write: correct",
			Ranks: 1,
			App: func(s *core.Session) error {
				src, err := s.PinnedAllocF64(bufN)
				if err != nil {
					return err
				}
				dst, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				st := s.Dev.StreamCreate(true)
				if err := s.Dev.MemcpyAsync(dst, src, bufN*8, st); err != nil {
					return err
				}
				if err := s.Dev.StreamSynchronize(st); err != nil {
					return err
				}
				s.StoreF64(src, 1.0)
				return nil
			},
		},
		{
			Name:       "local/memset_managed_host_read_nosync",
			Doc:        "cudaMemset on managed memory is asynchronous w.r.t. host: immediate host read races",
			Ranks:      1,
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.ManagedAllocF64(bufN)
				if err != nil {
					return err
				}
				if err := s.Dev.Memset(buf, 0x11, bufN*8); err != nil {
					return err
				}
				_ = s.LoadF64(buf)
				return nil
			},
		},
		{
			Name:  "local/memset_pinned_host_read",
			Doc:   "cudaMemset on PINNED host memory synchronizes with the host (paper §III-C): correct",
			Ranks: 1,
			App: func(s *core.Session) error {
				buf, err := s.PinnedAllocF64(bufN)
				if err != nil {
					return err
				}
				if err := s.Dev.Memset(buf, 0x11, bufN*8); err != nil {
					return err
				}
				_ = s.LoadF64(buf)
				return nil
			},
		},
		{
			Name:  "local/two_streams_event_chain",
			Doc:   "producer stream -> event -> cudaStreamWaitEvent -> consumer stream: correct",
			Ranks: 1,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				s1 := s.Dev.StreamCreate(true)
				s2 := s.Dev.StreamCreate(true)
				ev := s.Dev.EventCreate()
				if err := launch(s, "k_write", s1, buf); err != nil {
					return err
				}
				if err := s.Dev.EventRecord(ev, s1); err != nil {
					return err
				}
				if err := s.Dev.StreamWaitEvent(s2, ev); err != nil {
					return err
				}
				if err := launch(s, "k_read", s2, out, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				return nil
			},
		},
		{
			Name:       "local/two_streams_no_ordering",
			Doc:        "producer and consumer on unordered non-blocking streams: race",
			Ranks:      1,
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				s1 := s.Dev.StreamCreate(true)
				s2 := s.Dev.StreamCreate(true)
				if err := launch(s, "k_write", s1, buf); err != nil {
					return err
				}
				if err := launch(s, "k_read", s2, out, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				return nil
			},
		},
		{
			Name:  "local/same_stream_fifo",
			Doc:   "producer and consumer on the SAME stream: FIFO order, correct",
			Ranks: 1,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				out, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				st := s.Dev.StreamCreate(true)
				if err := launch(s, "k_write", st, buf); err != nil {
					return err
				}
				if err := launch(s, "k_read", st, out, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				return nil
			},
		},
		{
			Name:  "local/legacy_default_interleave",
			Doc:   "paper Fig. 3: K1 on blocking stream, K0 on default, K2 on blocking stream; sync on K2's stream covers all",
			Ranks: 1,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				s1 := s.Dev.StreamCreate(false)
				s2 := s.Dev.StreamCreate(false)
				if err := launch(s, "k_inc", s1, buf); err != nil { // K1
					return err
				}
				if err := launch(s, "k_inc", nil, buf); err != nil { // K0
					return err
				}
				if err := launch(s, "k_inc", s2, buf); err != nil { // K2
					return err
				}
				if err := s.Dev.StreamSynchronize(s2); err != nil {
					return err
				}
				_ = s.LoadF64(buf) // would race if any kernel were uncovered
				return nil
			},
		},
		{
			Name:       "local/default_kernel_blocks_nonblocking_not",
			Doc:        "a default-stream kernel does NOT order against a non-blocking stream's kernel: race",
			Ranks:      1,
			ExpectRace: true,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				nb := s.Dev.StreamCreate(true)
				if err := launch(s, "k_write", nb, buf); err != nil {
					return err
				}
				return launch(s, "k_inc", nil, buf)
			},
		},
		{
			Name:  "local/default_kernel_blocks_blocking_stream",
			Doc:   "a default-stream kernel waits for prior blocking-stream kernels (paper Fig. 3): correct",
			Ranks: 1,
			App: func(s *core.Session) error {
				buf, err := s.CudaMallocF64(bufN)
				if err != nil {
					return err
				}
				bs := s.Dev.StreamCreate(false)
				if err := launch(s, "k_write", bs, buf); err != nil {
					return err
				}
				if err := launch(s, "k_inc", nil, buf); err != nil {
					return err
				}
				s.Dev.DeviceSynchronize()
				_ = s.LoadF64(buf)
				return nil
			},
		},
	}
}
