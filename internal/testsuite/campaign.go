package testsuite

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"cusango/internal/campaign"
	"cusango/internal/cuda"
	"cusango/internal/faults"
	"cusango/internal/mpi"
	"cusango/internal/tsan"
)

// Campaign adapter: enumerates the suite's three sweep families —
// plain classification, chaos soak, replay parity — as campaign jobs
// and executes them. ExecuteJob is a pure function of the job identity
// (the MPI layer's prefer-completion abort protocol guarantees faulted
// runs are schedule-independent), so the campaign engine may shard
// jobs across workers and cache results freely.

// Job kinds understood by ExecuteJob.
const (
	KindSuite   = "suite"   // plain classification: Verdict must Pass
	KindChaos   = "chaos"   // fault soak: ChaosVerdict must stay trustworthy
	KindReplay  = "replay"  // record + offline replay must agree
	KindExplore = "explore" // schedule-space exploration must match classification
)

// SuiteJobs enumerates one classification job per (engine, case).
func SuiteJobs(cases []Case, engines []tsan.Engine) []campaign.Job {
	var jobs []campaign.Job
	for _, eng := range engines {
		for _, c := range cases {
			jobs = append(jobs, campaign.Job{
				Kind: KindSuite, Case: c.Name, Engine: eng.String(),
			})
		}
	}
	return jobs
}

// ChaosJobs enumerates one soak job per (seed, engine, case) — the
// same nesting order the serial ChaosSoak used, so reports read in
// the familiar order.
func ChaosJobs(cases []Case, seeds []uint64, rate float64, engines []tsan.Engine) []campaign.Job {
	var jobs []campaign.Job
	for _, seed := range seeds {
		spec := faults.Seeded(seed, rate).String()
		for _, eng := range engines {
			for _, c := range cases {
				jobs = append(jobs, campaign.Job{
					Kind: KindChaos, Case: c.Name, Engine: eng.String(),
					Seed: seed, Faults: spec,
				})
			}
		}
	}
	return jobs
}

// ReplayJobs enumerates one record-and-replay parity job per
// (engine, case).
func ReplayJobs(cases []Case, engines []tsan.Engine) []campaign.Job {
	var jobs []campaign.Job
	for _, eng := range engines {
		for _, c := range cases {
			jobs = append(jobs, campaign.Job{
				Kind: KindReplay, Case: c.Name, Engine: eng.String(),
			})
		}
	}
	return jobs
}

// ExploreJobs enumerates one schedule-space exploration job per
// (engine, case). Budget (max schedules) and bound (preemption bound)
// are encoded into the job's Config string so the result cache keys on
// them; zero means the testsuite default (unbounded coverage within
// DefaultExploreBudget).
func ExploreJobs(cases []Case, engines []tsan.Engine, budget, bound int) []campaign.Job {
	cfg := FormatExploreConfig(budget, bound)
	var jobs []campaign.Job
	for _, eng := range engines {
		for _, c := range cases {
			jobs = append(jobs, campaign.Job{
				Kind: KindExplore, Case: c.Name, Engine: eng.String(), Config: cfg,
			})
		}
	}
	return jobs
}

// FormatExploreConfig renders the explore job config ("b=512,p=2");
// zero values are omitted and an all-default config is "".
func FormatExploreConfig(budget, bound int) string {
	var parts []string
	if budget > 0 {
		parts = append(parts, fmt.Sprintf("b=%d", budget))
	}
	if bound > 0 {
		parts = append(parts, fmt.Sprintf("p=%d", bound))
	}
	return strings.Join(parts, ",")
}

func parseExploreConfig(s string) (budget, bound int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	for _, tok := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return 0, 0, fmt.Errorf("bad explore config token %q", tok)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad explore config value %q", tok)
		}
		switch k {
		case "b":
			budget = n
		case "p":
			bound = n
		default:
			return 0, 0, fmt.Errorf("unknown explore config key %q", k)
		}
	}
	return budget, bound, nil
}

// AllJobs enumerates every per-schedule sweep family over the full
// suite. Exploration (ExploreJobs) is enumerated separately — it runs
// many schedules per job and is opted into via `-kinds explore`.
func AllJobs(cases []Case, seeds []uint64, rate float64, engines []tsan.Engine) []campaign.Job {
	jobs := SuiteJobs(cases, engines)
	jobs = append(jobs, ChaosJobs(cases, seeds, rate, engines)...)
	jobs = append(jobs, ReplayJobs(cases, engines)...)
	return jobs
}

var caseIndex = sync.OnceValue(func() map[string]Case {
	m := make(map[string]Case)
	for _, c := range Cases() {
		m[c.Name] = c
	}
	return m
})

// ExecuteJob runs one campaign job. It is safe for concurrent use and
// deterministic in the job identity; infrastructure problems (unknown
// case, malformed spec) yield an error record, never a panic.
func ExecuteJob(j campaign.Job) *campaign.Record {
	return executeJob(j, Env{})
}

// executeJob is ExecuteJob under supervision: env's context tears hung
// runs down and its step budget truncates runaway ones into the
// deterministic "budget" verdict.
func executeJob(j campaign.Job, env Env) *campaign.Record {
	if j.Kind == KindStatic {
		// Static cases are "<module>/<kernel>", not suite cases, and
		// need no engine: dispatch before the case lookup.
		return execStatic(j.Case)
	}
	c, ok := caseIndex()[j.Case]
	if !ok {
		return errRecord(fmt.Sprintf("unknown case %q", j.Case))
	}
	engine, err := tsan.ParseEngine(j.Engine)
	if err != nil {
		return errRecord(err.Error())
	}
	switch j.Kind {
	case KindSuite:
		return execSuite(c, engine, env)
	case KindChaos:
		return execChaos(c, j.Faults, engine, env)
	case KindReplay:
		return execReplay(c, engine, env)
	case KindExplore:
		return execExplore(c, j.Config, engine, env)
	default:
		return errRecord(fmt.Sprintf("unknown job kind %q", j.Kind))
	}
}

func errRecord(msg string) *campaign.Record {
	return &campaign.Record{Verdict: campaign.VerdictError, AppFault: msg}
}

func execSuite(c Case, engine tsan.Engine, env Env) *campaign.Record {
	v := runCase(c, cuda.Config{}, tsan.Config{Engine: engine}, env)
	r := &campaign.Record{
		Verdict: campaign.VerdictPass,
		Races:   int(v.Races),
		Issues:  len(v.Issues),
	}
	if v.Err != nil {
		if budgetClass(v.Err) {
			return budgetRecord(env.MaxSteps)
		}
		r.Verdict = campaign.VerdictError
		r.AppFault = v.Err.Error()
		r.Findings = append(r.Findings,
			campaign.NewFinding("misclassification", c.Name, "run error: "+v.Err.Error()))
		return r
	}
	if !v.Pass() {
		r.Verdict = campaign.VerdictFail
		r.Findings = append(r.Findings, campaign.NewFinding("misclassification", c.Name,
			fmt.Sprintf("races=%d issues=%d, expect race=%v issue=%v",
				v.Races, len(v.Issues), c.ExpectRace, c.ExpectIssue)))
	}
	return r
}

func execChaos(c Case, spec string, engine tsan.Engine, env Env) *campaign.Record {
	plan, err := faults.Parse(spec)
	if err != nil {
		return errRecord(fmt.Sprintf("bad fault spec %q: %v", spec, err))
	}
	v := runChaosCase(c, plan, engine, env)
	if v.Budget {
		return budgetRecord(env.MaxSteps)
	}
	r := &campaign.Record{
		Verdict:  campaign.VerdictPass,
		Races:    int(v.Races),
		Degraded: len(v.Degraded),
	}
	for _, f := range v.Injected {
		r.Injected = append(r.Injected, f.Spec())
	}
	r.AppFault = faultLabel(v.AppFault)
	if !v.OK() {
		r.Verdict = campaign.VerdictFail
		for _, viol := range v.Violations {
			r.Findings = append(r.Findings,
				campaign.NewFinding("chaos-violation", c.Name, viol))
		}
	}
	return r
}

// faultLabel reduces an attributable rank error to a deterministic
// label: the injected fault's replay spec, abort collateral, or the
// error text.
func faultLabel(err error) string {
	if err == nil {
		return ""
	}
	if f, ok := faults.Extract(err); ok {
		return f.Spec()
	}
	if errors.Is(err, mpi.ErrAborted) {
		return "aborted"
	}
	return err.Error()
}

func execExplore(c Case, cfg string, engine tsan.Engine, env Env) *campaign.Record {
	budget, bound, err := parseExploreConfig(cfg)
	if err != nil {
		return errRecord(fmt.Sprintf("bad explore config %q: %v", cfg, err))
	}
	v := ExploreCase(c, ExploreOptions{Engine: engine, Budget: budget, Bound: bound, Env: env})
	res := &v.Result
	if env.MaxSteps > 0 && res.Budgeted > 0 {
		return budgetRecord(env.MaxSteps)
	}
	r := &campaign.Record{
		Verdict:          campaign.VerdictPass,
		Races:            int(res.DefaultRaces),
		Explored:         res.Explored,
		Pruned:           res.Pruned,
		RacySchedules:    res.Racy,
		Schedule:         res.MinRacySpec,
		Incomplete:       !res.Complete,
		NeedsExploration: v.NeedsExploration,
	}
	if !v.OK() {
		r.Verdict = campaign.VerdictFail
		for _, viol := range v.Violations {
			r.Findings = append(r.Findings,
				campaign.NewFinding("explore-violation", c.Name, viol))
		}
	}
	return r
}

func execReplay(c Case, engine tsan.Engine, env Env) *campaign.Record {
	tcfg := tsan.Config{Engine: engine}
	live, blobs, err := recordCase(c, tcfg, env)
	if err != nil {
		if budgetClass(err) {
			return budgetRecord(env.MaxSteps)
		}
		return errRecord("record: " + err.Error())
	}
	replayed, err := ReplayTraces(c, blobs, tcfg)
	if err != nil {
		return errRecord("replay: " + err.Error())
	}
	r := &campaign.Record{
		Verdict: campaign.VerdictPass,
		Races:   int(live.Races),
		Issues:  len(live.Issues),
	}
	fail := func(detail string) {
		r.Verdict = campaign.VerdictFail
		r.Findings = append(r.Findings,
			campaign.NewFinding("replay-parity", c.Name, detail))
	}
	if live.Races != replayed.Races {
		fail(fmt.Sprintf("race count: live %d, replayed %d", live.Races, replayed.Races))
	}
	lk, rk := issueKeys(live.Issues), issueKeys(replayed.Issues)
	if len(lk) != len(rk) {
		fail(fmt.Sprintf("issues: live %v, replayed %v", lk, rk))
	} else {
		for i := range lk {
			if lk[i] != rk[i] {
				fail(fmt.Sprintf("issue %d: live %q, replayed %q", i, lk[i], rk[i]))
			}
		}
	}
	if live.Pass() != replayed.Pass() {
		fail(fmt.Sprintf("verdict: live pass=%v, replayed pass=%v", live.Pass(), replayed.Pass()))
	}
	if !live.Pass() {
		r.Verdict = campaign.VerdictFail
		r.Findings = append(r.Findings,
			campaign.NewFinding("misclassification", c.Name, "live run failed expectation: "+live.String()))
	}
	return r
}
