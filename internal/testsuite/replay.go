package testsuite

import (
	"bytes"
	"fmt"
	"sort"

	"cusango/internal/core"
	"cusango/internal/cuda"
	"cusango/internal/must"
	"cusango/internal/trace"
	"cusango/internal/tsan"
)

// issueKeys reduces MUST findings to comparable, order-independent
// (kind, call) pairs. Detail strings are excluded: the request-leak
// detail joins outstanding requests in map order, which is not
// deterministic for multiple leaks — but the set of findings is.
func issueKeys(issues []*must.Issue) []string {
	keys := make([]string, len(issues))
	for i, is := range issues {
		keys[i] = fmt.Sprintf("%s/%s", is.Kind, is.Call)
	}
	sort.Strings(keys)
	return keys
}

// Record/replay support: every suite case can be run with per-rank
// trace recording and then re-analyzed offline from the recorded event
// streams alone. The replay-parity test asserts the two paths agree on
// every verdict — the determinism guarantee of the trace subsystem.

// RecordCase executes one case under the full tool with per-rank trace
// recording and returns the live verdict plus the encoded traces
// (indexed by rank).
func RecordCase(c Case, tcfg tsan.Config) (*Verdict, [][]byte, error) {
	return recordCase(c, tcfg, Env{})
}

func recordCase(c Case, tcfg tsan.Config, env Env) (*Verdict, [][]byte, error) {
	ranks := c.Ranks
	if ranks == 0 {
		ranks = 2
	}
	bufs := make([]*bytes.Buffer, ranks)
	v := &Verdict{Case: c}
	res, err := core.Run(core.Config{
		Flavor:   core.MUSTCuSan,
		Ranks:    ranks,
		Module:   Module(),
		Cuda:     cuda.Config{},
		TSanCfg:  tcfg,
		Ctx:      env.Ctx,
		MaxSteps: env.MaxSteps,
		Trace: func(rank int) *trace.Writer {
			bufs[rank] = &bytes.Buffer{}
			return trace.NewWriter(bufs[rank], trace.Header{
				Rank: rank, WorldSize: ranks, Label: c.Name,
			})
		},
	}, c.App)
	if err != nil {
		return nil, nil, err
	}
	if err := res.FirstError(); err != nil {
		v.Err = err
		return v, nil, err
	}
	v.Races = res.TotalRaces()
	for i := range res.Ranks {
		v.Issues = append(v.Issues, res.Ranks[i].Issues...)
	}
	blobs := make([][]byte, ranks)
	for i, b := range bufs {
		blobs[i] = b.Bytes()
	}
	return v, blobs, nil
}

// ReplayTraces re-analyzes recorded per-rank traces offline and
// aggregates the outcome into a Verdict for the given case, comparable
// to the live one.
func ReplayTraces(c Case, blobs [][]byte, tcfg tsan.Config) (*Verdict, error) {
	v := &Verdict{Case: c}
	for rank, blob := range blobs {
		tr, err := trace.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", rank, err)
		}
		rr, err := trace.Replay(tr, trace.ReplayConfig{TSanCfg: tcfg})
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", rank, err)
		}
		v.Races += rr.Races
		v.Issues = append(v.Issues, rr.Issues...)
	}
	return v, nil
}
