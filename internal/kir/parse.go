package kir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR form emitted by Function.String back into a
// Module — the "assembler" of the toolchain. Round-tripping is exact:
// Parse(m.String()) produces a module whose String() is identical.
//
// Grammar (one or more functions):
//
//	kernel|device NAME(TYPE NAME, ...) [-> TYPE] {
//	  locals %i:TYPE %j:TYPE ...
//	b0: ; label
//	  %dst = consti 42
//	  store %p, %v
//	  condbr %c, b1, b2
//	...
//	}
type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string {
	return fmt.Sprintf("kir: parse error at line %d: %s", e.line, e.msg)
}

type parser struct {
	lines []string
	pos   int
}

// Parse parses a module from its textual form.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m := NewModule()
	for {
		p.skipBlank()
		if p.pos >= len(p.lines) {
			break
		}
		f, err := p.function()
		if err != nil {
			return nil, err
		}
		if m.Func(f.Name) != nil {
			return nil, &parseError{p.pos, fmt.Sprintf("duplicate function %q", f.Name)}
		}
		m.Add(f)
	}
	if err := Verify(m); err != nil {
		return nil, fmt.Errorf("kir: parsed module does not verify: %w", err)
	}
	return m, nil
}

func (p *parser) skipBlank() {
	for p.pos < len(p.lines) && strings.TrimSpace(p.lines[p.pos]) == "" {
		p.pos++
	}
}

func (p *parser) fail(format string, args ...any) error {
	return &parseError{p.pos + 1, fmt.Sprintf(format, args...)}
}

func parseType(s string) (Type, bool) {
	switch s {
	case "f64":
		return TFloat, true
	case "i64":
		return TInt, true
	case "f64*":
		return TPtrF64, true
	case "i64*":
		return TPtrI64, true
	case "i32*":
		return TPtrI32, true
	case "u8*":
		return TPtrU8, true
	default:
		return TInvalid, false
	}
}

// function parses one function block.
func (p *parser) function() (*Function, error) {
	header := strings.TrimSpace(p.lines[p.pos])
	kind, rest, ok := strings.Cut(header, " ")
	if !ok || (kind != "kernel" && kind != "device") {
		return nil, p.fail("expected 'kernel' or 'device', got %q", header)
	}
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return nil, p.fail("missing '(' in %q", header)
	}
	name := strings.TrimSpace(rest[:open])
	if name == "" {
		return nil, p.fail("missing function name")
	}
	closeIdx := strings.LastIndexByte(rest, ')')
	if closeIdx < open {
		return nil, p.fail("missing ')' in %q", header)
	}
	f := &Function{Name: name, Kernel: kind == "kernel"}
	// parameters
	paramsSrc := strings.TrimSpace(rest[open+1 : closeIdx])
	if paramsSrc != "" {
		for _, ps := range strings.Split(paramsSrc, ",") {
			fields := strings.Fields(strings.TrimSpace(ps))
			if len(fields) != 2 {
				return nil, p.fail("bad parameter %q", ps)
			}
			t, ok := parseType(fields[0])
			if !ok {
				return nil, p.fail("bad parameter type %q", fields[0])
			}
			f.Params = append(f.Params, Param{Name: fields[1], Type: t})
			f.LocalTypes = append(f.LocalTypes, t)
		}
	}
	// return type and opening brace
	tail := strings.TrimSpace(rest[closeIdx+1:])
	tail = strings.TrimSuffix(tail, "{")
	tail = strings.TrimSpace(tail)
	if tail != "" {
		rt := strings.TrimSpace(strings.TrimPrefix(tail, "->"))
		t, ok := parseType(rt)
		if !ok {
			return nil, p.fail("bad return type %q", tail)
		}
		f.RetType = t
	}
	p.pos++

	// optional locals line
	p.skipBlank()
	if p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		if strings.HasPrefix(line, "locals") {
			for _, tok := range strings.Fields(line)[1:] {
				idxS, typeS, ok := strings.Cut(tok, ":")
				if !ok || !strings.HasPrefix(idxS, "%") {
					return nil, p.fail("bad locals entry %q", tok)
				}
				idx, err := strconv.Atoi(idxS[1:])
				if err != nil || idx != len(f.LocalTypes) {
					return nil, p.fail("locals entry %q out of order (want %%%d)", tok, len(f.LocalTypes))
				}
				t, ok := parseType(typeS)
				if !ok {
					return nil, p.fail("bad local type %q", typeS)
				}
				f.LocalTypes = append(f.LocalTypes, t)
			}
			p.pos++
		}
	}

	// blocks until closing brace
	var cur *Block
	for {
		if p.pos >= len(p.lines) {
			return nil, p.fail("unexpected end of input in function %q", name)
		}
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		switch {
		case line == "":
			continue
		case line == "}":
			if cur != nil {
				f.Blocks = append(f.Blocks, cur)
			}
			if len(f.Blocks) == 0 {
				return nil, p.fail("function %q has no blocks", name)
			}
			return f, nil
		case strings.HasPrefix(line, "b") && strings.Contains(line, ":"):
			if cur != nil {
				f.Blocks = append(f.Blocks, cur)
			}
			label, comment, _ := strings.Cut(line, ":")
			idx, err := strconv.Atoi(label[1:])
			if err != nil || idx != len(f.Blocks) {
				return nil, p.fail("block label %q out of order (want b%d)", label, len(f.Blocks))
			}
			blkName := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(comment), ";"))
			cur = &Block{Name: blkName, Term: Terminator{Kind: TermRet}}
		default:
			if cur == nil {
				return nil, p.fail("instruction outside block: %q", line)
			}
			if err := p.statement(cur, line); err != nil {
				return nil, err
			}
		}
	}
}

func parseLocal(tok string) (Local, error) {
	tok = strings.TrimSuffix(strings.TrimSpace(tok), ",")
	if !strings.HasPrefix(tok, "%") {
		return 0, fmt.Errorf("expected local, got %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return 0, fmt.Errorf("bad local %q", tok)
	}
	return Local(n), nil
}

func parseBlockRef(tok string) (int, error) {
	tok = strings.TrimSuffix(strings.TrimSpace(tok), ",")
	if !strings.HasPrefix(tok, "b") {
		return 0, fmt.Errorf("expected block ref, got %q", tok)
	}
	return strconv.Atoi(tok[1:])
}

var binOps = map[string]BinOp{
	"add": Add, "sub": Sub, "mul": Mul, "div": Div, "rem": Rem,
	"min": Min, "max": Max, "and": And, "or": Or, "shl": Shl, "shr": Shr,
}

var preds = map[string]Pred{
	"eq": Eq, "ne": Ne, "lt": Lt, "le": Le, "gt": Gt, "ge": Ge,
}

var builtinNames = func() map[string]Builtin {
	m := make(map[string]Builtin)
	for b := ThreadIdxX; b <= GlobalIdY; b++ {
		m[b.String()] = b
	}
	return m
}()

// statement parses one instruction or terminator into blk.
func (p *parser) statement(blk *Block, line string) error {
	fields := strings.Fields(line)
	fail := func(format string, args ...any) error {
		return &parseError{p.pos, fmt.Sprintf(format, args...) + " in " + strconv.Quote(line)}
	}

	// terminators
	switch fields[0] {
	case "ret":
		t := Terminator{Kind: TermRet}
		if len(fields) == 2 {
			v, err := parseLocal(fields[1])
			if err != nil {
				return fail("%v", err)
			}
			t.Val, t.HasVal = v, true
		}
		blk.Term = t
		return nil
	case "br":
		if len(fields) != 2 {
			return fail("br needs a target")
		}
		target, err := parseBlockRef(fields[1])
		if err != nil {
			return fail("%v", err)
		}
		blk.Term = Terminator{Kind: TermBr, Target: target}
		return nil
	case "condbr":
		if len(fields) != 4 {
			return fail("condbr needs cond and two targets")
		}
		c, err := parseLocal(fields[1])
		if err != nil {
			return fail("%v", err)
		}
		then, err := parseBlockRef(fields[2])
		if err != nil {
			return fail("%v", err)
		}
		els, err := parseBlockRef(fields[3])
		if err != nil {
			return fail("%v", err)
		}
		blk.Term = Terminator{Kind: TermCondBr, Cond: c, Target: then, Else: els}
		return nil
	case "store":
		if len(fields) != 3 {
			return fail("store needs address and value")
		}
		a, err := parseLocal(fields[1])
		if err != nil {
			return fail("%v", err)
		}
		b, err := parseLocal(fields[2])
		if err != nil {
			return fail("%v", err)
		}
		blk.Instrs = append(blk.Instrs, Instr{Op: OpStore, A: a, B: b})
		return nil
	case "atomic.faddstore":
		if len(fields) != 3 {
			return fail("atomic.faddstore needs address and value")
		}
		a, err := parseLocal(fields[1])
		if err != nil {
			return fail("%v", err)
		}
		b, err := parseLocal(fields[2])
		if err != nil {
			return fail("%v", err)
		}
		blk.Instrs = append(blk.Instrs, Instr{Op: OpAtomicAddF, A: a, B: b})
		return nil
	case "syncthreads":
		if len(fields) != 1 {
			return fail("syncthreads takes no operands")
		}
		blk.Instrs = append(blk.Instrs, Instr{Op: OpSyncthreads})
		return nil
	case "call":
		in, err := parseCall(-1, strings.Join(fields, " "))
		if err != nil {
			return fail("%v", err)
		}
		blk.Instrs = append(blk.Instrs, in)
		return nil
	}

	// assignments: %dst = OP ...
	if len(fields) < 3 || fields[1] != "=" {
		return fail("unrecognized statement")
	}
	dst, err := parseLocal(fields[0])
	if err != nil {
		return fail("%v", err)
	}
	op := fields[2]
	args := fields[3:]
	one := func() (Local, error) {
		if len(args) != 1 {
			return 0, fmt.Errorf("want 1 operand, got %d", len(args))
		}
		return parseLocal(args[0])
	}
	two := func() (Local, Local, error) {
		if len(args) != 2 {
			return 0, 0, fmt.Errorf("want 2 operands, got %d", len(args))
		}
		a, err := parseLocal(args[0])
		if err != nil {
			return 0, 0, err
		}
		b, err := parseLocal(args[1])
		return a, b, err
	}

	var in Instr
	switch {
	case op == "constf":
		if len(args) != 1 {
			return fail("constf needs one immediate")
		}
		x, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return fail("bad float %q", args[0])
		}
		in = Instr{Op: OpConstF, Dst: dst, FImm: x}
	case op == "consti":
		if len(args) != 1 {
			return fail("consti needs one immediate")
		}
		x, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			return fail("bad int %q", args[0])
		}
		in = Instr{Op: OpConstI, Dst: dst, IImm: x}
	case op == "mov":
		a, err := one()
		if err != nil {
			return fail("%v", err)
		}
		in = Instr{Op: OpMov, Dst: dst, A: a}
	case op == "i2f" || op == "f2i":
		a, err := one()
		if err != nil {
			return fail("%v", err)
		}
		code := OpI2F
		if op == "f2i" {
			code = OpF2I
		}
		in = Instr{Op: code, Dst: dst, A: a}
	case op == "gep":
		a, b, err := two()
		if err != nil {
			return fail("%v", err)
		}
		in = Instr{Op: OpGEP, Dst: dst, A: a, B: b}
	case op == "load":
		a, err := one()
		if err != nil {
			return fail("%v", err)
		}
		in = Instr{Op: OpLoad, Dst: dst, A: a}
	case strings.HasPrefix(op, "call"):
		in, err = parseCall(dst, strings.Join(fields[2:], " "))
		if err != nil {
			return fail("%v", err)
		}
	case strings.HasPrefix(op, "fcmp.") || strings.HasPrefix(op, "icmp."):
		pr, ok := preds[op[5:]]
		if !ok {
			return fail("bad predicate %q", op)
		}
		a, b, err := two()
		if err != nil {
			return fail("%v", err)
		}
		code := OpCmpF
		if op[0] == 'i' {
			code = OpCmpI
		}
		in = Instr{Op: code, Dst: dst, Pred: pr, A: a, B: b}
	case op[0] == 'f' || op[0] == 'i':
		bo, ok := binOps[op[1:]]
		if !ok {
			if bi, okb := builtinNames[op]; okb {
				in = Instr{Op: OpBuiltin, Dst: dst, Builtin: bi}
				break
			}
			return fail("unknown op %q", op)
		}
		a, b, err := two()
		if err != nil {
			return fail("%v", err)
		}
		code := OpBinF
		if op[0] == 'i' {
			code = OpBinI
		}
		in = Instr{Op: code, Dst: dst, Bin: bo, A: a, B: b}
	default:
		if bi, ok := builtinNames[op]; ok {
			in = Instr{Op: OpBuiltin, Dst: dst, Builtin: bi}
			break
		}
		return fail("unknown op %q", op)
	}
	blk.Instrs = append(blk.Instrs, in)
	return nil
}

// parseCall parses `call @name(%a, %b)`.
func parseCall(dst Local, src string) (Instr, error) {
	src = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(src), "call"))
	if !strings.HasPrefix(src, "@") {
		return Instr{}, fmt.Errorf("call missing @callee in %q", src)
	}
	open := strings.IndexByte(src, '(')
	closeIdx := strings.LastIndexByte(src, ')')
	if open < 0 || closeIdx < open {
		return Instr{}, fmt.Errorf("call missing argument list in %q", src)
	}
	callee := src[1:open]
	in := Instr{Op: OpCall, Dst: dst, Callee: callee}
	argsSrc := strings.TrimSpace(src[open+1 : closeIdx])
	if argsSrc != "" {
		for _, as := range strings.Split(argsSrc, ",") {
			l, err := parseLocal(as)
			if err != nil {
				return Instr{}, err
			}
			in.Args = append(in.Args, l)
		}
	}
	return in, nil
}
