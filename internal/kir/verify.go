package kir

import "fmt"

// VerifyError describes an ill-formed function.
type VerifyError struct {
	Func  string
	Block int
	Instr int // -1 for terminator / function-level errors
	Msg   string
}

func (e *VerifyError) Error() string {
	where := fmt.Sprintf("function %q", e.Func)
	if e.Block >= 0 {
		where += fmt.Sprintf(", block %d", e.Block)
	}
	if e.Instr >= 0 {
		where += fmt.Sprintf(", instr %d", e.Instr)
	}
	return fmt.Sprintf("kir: %s: %s", where, e.Msg)
}

// Verify type-checks every function in the module and checks call-graph
// well-formedness (callees exist, arities and types match, kernels take
// only scalar and pointer params). It must pass before a module is
// analyzed or executed — the analog of LLVM's module verifier.
func Verify(m *Module) error {
	for _, f := range m.Functions() {
		if err := verifyFunc(m, f); err != nil {
			return err
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Function) error {
	fail := func(block, instr int, format string, args ...any) error {
		return &VerifyError{Func: f.Name, Block: block, Instr: instr, Msg: fmt.Sprintf(format, args...)}
	}
	if len(f.Blocks) == 0 {
		return fail(-1, -1, "no blocks")
	}
	if len(f.LocalTypes) < len(f.Params) {
		return fail(-1, -1, "fewer local types than params")
	}
	for i, p := range f.Params {
		if p.Type == TInvalid {
			return fail(-1, -1, "param %d (%s) has invalid type", i, p.Name)
		}
		if f.LocalTypes[i] != p.Type {
			return fail(-1, -1, "local %d type != param type", i)
		}
	}
	typeOf := func(l Local) (Type, bool) {
		if l < 0 || int(l) >= len(f.LocalTypes) {
			return TInvalid, false
		}
		return f.LocalTypes[l], true
	}
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs {
			check := func(l Local, want Type, role string) error {
				t, ok := typeOf(l)
				if !ok {
					return fail(bi, ii, "%s local %d out of range", role, l)
				}
				if want != TInvalid && t != want {
					return fail(bi, ii, "%s local %d has type %v, want %v", role, l, t, want)
				}
				return nil
			}
			checkPtr := func(l Local, role string) (Type, error) {
				t, ok := typeOf(l)
				if !ok {
					return TInvalid, fail(bi, ii, "%s local %d out of range", role, l)
				}
				if !t.IsPtr() {
					return TInvalid, fail(bi, ii, "%s local %d is %v, want pointer", role, l, t)
				}
				return t, nil
			}
			switch in.Op {
			case OpConstF:
				if err := check(in.Dst, TFloat, "dst"); err != nil {
					return err
				}
			case OpConstI:
				if err := check(in.Dst, TInt, "dst"); err != nil {
					return err
				}
			case OpMov:
				dt, ok := typeOf(in.Dst)
				if !ok {
					return fail(bi, ii, "mov dst out of range")
				}
				if err := check(in.A, dt, "src"); err != nil {
					return err
				}
			case OpBinF:
				for _, l := range []Local{in.Dst, in.A, in.B} {
					if err := check(l, TFloat, "operand"); err != nil {
						return err
					}
				}
				switch in.Bin {
				case Rem, And, Or, Shl, Shr:
					return fail(bi, ii, "float binop %v not supported", in.Bin)
				}
			case OpBinI:
				for _, l := range []Local{in.Dst, in.A, in.B} {
					if err := check(l, TInt, "operand"); err != nil {
						return err
					}
				}
			case OpCmpF:
				if err := check(in.Dst, TInt, "dst"); err != nil {
					return err
				}
				if err := check(in.A, TFloat, "lhs"); err != nil {
					return err
				}
				if err := check(in.B, TFloat, "rhs"); err != nil {
					return err
				}
			case OpCmpI:
				for _, l := range []Local{in.Dst, in.A, in.B} {
					if err := check(l, TInt, "operand"); err != nil {
						return err
					}
				}
			case OpI2F:
				if err := check(in.Dst, TFloat, "dst"); err != nil {
					return err
				}
				if err := check(in.A, TInt, "src"); err != nil {
					return err
				}
			case OpF2I:
				if err := check(in.Dst, TInt, "dst"); err != nil {
					return err
				}
				if err := check(in.A, TFloat, "src"); err != nil {
					return err
				}
			case OpBuiltin:
				if err := check(in.Dst, TInt, "dst"); err != nil {
					return err
				}
			case OpGEP:
				bt, err := checkPtr(in.A, "base")
				if err != nil {
					return err
				}
				if err := check(in.Dst, bt, "dst"); err != nil {
					return err
				}
				if err := check(in.B, TInt, "index"); err != nil {
					return err
				}
			case OpLoad:
				pt, err := checkPtr(in.A, "ptr")
				if err != nil {
					return err
				}
				want := TInt
				if pt.ElemFloat() {
					want = TFloat
				}
				if err := check(in.Dst, want, "dst"); err != nil {
					return err
				}
			case OpStore:
				pt, err := checkPtr(in.A, "ptr")
				if err != nil {
					return err
				}
				want := TInt
				if pt.ElemFloat() {
					want = TFloat
				}
				if err := check(in.B, want, "val"); err != nil {
					return err
				}
			case OpAtomicAddF:
				pt, err := checkPtr(in.A, "ptr")
				if err != nil {
					return err
				}
				if !pt.ElemFloat() {
					return fail(bi, ii, "atomicAddF on non-float pointee %v", pt)
				}
				if err := check(in.B, TFloat, "val"); err != nil {
					return err
				}
			case OpSyncthreads:
				// Barrier: no operands, nothing to check. Legal in both
				// kernels and device functions (a device function called
				// uniformly from a kernel may contain barriers).
			case OpCall:
				callee := m.Func(in.Callee)
				if callee == nil {
					return fail(bi, ii, "call to unknown function %q", in.Callee)
				}
				if len(in.Args) != len(callee.Params) {
					return fail(bi, ii, "call %q: %d args, want %d", in.Callee, len(in.Args), len(callee.Params))
				}
				for ai, a := range in.Args {
					if err := check(a, callee.Params[ai].Type, "arg"); err != nil {
						return err
					}
				}
				if in.Dst >= 0 {
					if callee.RetType == TInvalid {
						return fail(bi, ii, "call %q: void callee used with result", in.Callee)
					}
					if err := check(in.Dst, callee.RetType, "result"); err != nil {
						return err
					}
				}
			default:
				return fail(bi, ii, "unknown opcode %d", in.Op)
			}
		}
		t := b.Term
		switch t.Kind {
		case TermBr:
			if t.Target < 0 || t.Target >= len(f.Blocks) {
				return fail(bi, -1, "br target %d out of range", t.Target)
			}
		case TermCondBr:
			if tt, ok := typeOf(t.Cond); !ok || tt != TInt {
				return fail(bi, -1, "condbr condition must be an int local")
			}
			if t.Target < 0 || t.Target >= len(f.Blocks) || t.Else < 0 || t.Else >= len(f.Blocks) {
				return fail(bi, -1, "condbr target out of range")
			}
		case TermRet:
			if t.HasVal {
				if f.RetType == TInvalid {
					return fail(bi, -1, "ret with value in void function")
				}
				if tt, ok := typeOf(t.Val); !ok || tt != f.RetType {
					return fail(bi, -1, "ret value type mismatch")
				}
			} else if f.RetType != TInvalid {
				return fail(bi, -1, "missing return value")
			}
		default:
			return fail(bi, -1, "unknown terminator %d", t.Kind)
		}
	}
	return nil
}
