package kir

import (
	"strings"
	"testing"
)

func TestParseRoundTripCopyKernel(t *testing.T) {
	m := NewModule()
	m.Add(buildCopyKernel())
	text := m.Func("copy").String()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse:\n%s\nerror: %v", text, err)
	}
	again := parsed.Func("copy").String()
	if again != text {
		t.Fatalf("round trip differs:\n--- original\n%s\n--- reprinted\n%s", text, again)
	}
}

func TestParseHandWritten(t *testing.T) {
	src := `
device square(f64 x) -> f64 {
  locals %1:f64
b0: ; entry
  %1 = fmul %0, %0
  ret %1
}

kernel sq(f64* out, f64* in, i64 n) {
  locals %3:i64 %4:i64 %5:f64 %6:f64 %7:f64* %8:f64*
b0: ; entry
  %3 = globalId.x
  %4 = icmp.lt %3, %2
  condbr %4, b1, b2
b1: ; body
  %7 = gep %1, %3
  %5 = load %7
  %6 = call @square(%5)
  %8 = gep %0, %3
  store %8, %6
  br b2
b2: ; done
  ret
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("sq")
	if f == nil || !f.Kernel || len(f.Blocks) != 3 {
		t.Fatalf("sq parsed wrong: %+v", f)
	}
	if m.Func("square").Kernel {
		t.Fatal("square must be a device function")
	}
	if m.Func("square").RetType != TFloat {
		t.Fatal("return type lost")
	}
	// Parsed modules must verify (Parse enforces this) and reprint
	// stably; reprint the whole module so the callee travels along.
	text1 := m.Func("square").String() + "\n" + m.Func("sq").String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Func("square").String() + "\n" + m2.Func("sq").String()
	if got != text1 {
		t.Fatalf("unstable reprint:\n%s\nvs\n%s", text1, got)
	}
}

func TestParseWholeModulesRoundTrip(t *testing.T) {
	// Build a module with every opcode reachable from the builders and
	// check exact round-tripping of all functions together.
	m := NewModule()
	m.Add(DeviceFunc("helper", []Param{{Name: "p", Type: TPtrF64}}, TInvalid,
		func(e *Emitter) {
			e.AtomicAddF(e.Arg("p"), e.ConstF(1.5))
		}))
	m.Add(KernelFunc("all_ops", []Param{
		{Name: "fp", Type: TPtrF64},
		{Name: "ip", Type: TPtrI64},
		{Name: "bp", Type: TPtrU8},
		{Name: "wp", Type: TPtrI32},
		{Name: "n", Type: TInt},
	}, func(e *Emitter) {
		i := e.GlobalIDX()
		_ = e.Builtin(ThreadIdxY)
		_ = e.Builtin(BlockDimX)
		e.If(e.Lt(i, e.Arg("n")), func() {
			f := e.LoadIdx(e.Arg("fp"), i)
			g := e.Div(e.Mul(f, e.ConstF(2)), e.Max(f, e.ConstF(1)))
			e.StoreIdx(e.Arg("fp"), i, e.Min(g, e.ConstF(100)))
			iv := e.LoadIdx(e.Arg("ip"), i)
			e.StoreIdx(e.Arg("ip"), i, e.Rem(e.AndI(iv, e.ConstI(7)), e.ConstI(3)))
			e.StoreIdx(e.Arg("bp"), i, e.ToInt(f))
			e.StoreIdx(e.Arg("wp"), i, e.ToInt(e.ToFloat(iv)))
			e.Call("helper", e.Arg("fp"))
		})
		e.Syncthreads()
		e.For(e.ConstI(0), e.ConstI(4), e.ConstI(1), func(j Value) {
			e.StoreIdx(e.Arg("ip"), j, j)
		})
	}))
	var text strings.Builder
	for _, f := range m.Functions() {
		text.WriteString(f.String())
		text.WriteByte('\n')
	}
	parsed, err := Parse(text.String())
	if err != nil {
		t.Fatalf("Parse failed: %v\n%s", err, text.String())
	}
	for _, f := range m.Functions() {
		got := parsed.Func(f.Name).String()
		if got != f.String() {
			t.Fatalf("round trip of %s differs:\n%s\nvs\n%s", f.Name, f.String(), got)
		}
	}
}

func TestParseSyncthreadsRoundTrip(t *testing.T) {
	// The barrier round-trips through the canonical textual form, and the
	// parser rejects operands on it.
	src := `kernel phase(f64* buf, i64 n) {
  locals %2:i64 %3:f64* %4:f64 %5:f64
b0: ; entry
  %2 = threadIdx.x
  %3 = gep %0, %2
  %4 = constf 1
  store %3, %4
  syncthreads
  %5 = load %3
  ret
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("phase")
	var barriers int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpSyncthreads {
				barriers++
			}
		}
	}
	if barriers != 1 {
		t.Fatalf("barriers = %d, want 1", barriers)
	}
	if got := m.String(); got != src {
		t.Fatalf("round trip differs:\n%s\nvs\n%s", src, got)
	}
	if _, err := Parse("kernel k() {\nb0: ;\n  syncthreads %0\n  ret\n}\n"); err == nil {
		t.Fatal("syncthreads with operand accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage header", "banana foo() {\nb0: ;\n  ret\n}"},
		{"bad param type", "kernel f(q8 x) {\nb0: ;\n  ret\n}"},
		{"locals out of order", "kernel f(i64 n) {\n  locals %5:i64\nb0: ;\n  ret\n}"},
		{"unknown op", "kernel f(i64 n) {\n  locals %1:i64\nb0: ;\n  %1 = frobnicate %0\n  ret\n}"},
		{"unclosed function", "kernel f(i64 n) {\nb0: ;\n  ret\n"},
		{"type error", "kernel f(f64* p) {\n  locals %1:i64\nb0: ;\n  %1 = load %0\n  ret\n}"},
		{"unknown callee", "kernel f() {\nb0: ;\n  call @ghost()\n  ret\n}"},
		{"block out of order", "kernel f() {\nb1: ;\n  ret\n}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.src); err == nil {
				t.Fatalf("Parse accepted %q", tc.src)
			}
		})
	}
}

func TestModuleStringRoundTrip(t *testing.T) {
	m := NewModule()
	m.Add(buildCopyKernel())
	m.Add(DeviceFunc("noop", nil, TInvalid, func(e *Emitter) {}))
	text := m.String()
	parsed, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != text {
		t.Fatalf("module round trip differs:\n%s\nvs\n%s", text, parsed.String())
	}
	if len(parsed.Functions()) != 2 {
		t.Fatalf("functions = %d", len(parsed.Functions()))
	}
}
