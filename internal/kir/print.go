package kir

import (
	"fmt"
	"strings"
)

// String renders the function as readable pseudo-IR, for golden tests and
// diagnostics.
func (f *Function) String() string {
	var b strings.Builder
	kind := "device"
	if f.Kernel {
		kind = "kernel"
	}
	fmt.Fprintf(&b, "%s %s(", kind, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Type, p.Name)
	}
	b.WriteString(")")
	if f.RetType != TInvalid {
		fmt.Fprintf(&b, " -> %s", f.RetType)
	}
	b.WriteString(" {\n")
	// Non-parameter locals with their static types, so the textual form
	// is parseable without type inference.
	if len(f.LocalTypes) > len(f.Params) {
		b.WriteString("  locals")
		for i := len(f.Params); i < len(f.LocalTypes); i++ {
			fmt.Fprintf(&b, " %%%d:%s", i, f.LocalTypes[i])
		}
		b.WriteByte('\n')
	}
	for bi, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d: ; %s\n", bi, blk.Name)
		for _, in := range blk.Instrs {
			b.WriteString("  ")
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
		b.WriteString("  ")
		b.WriteString(blk.Term.String())
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (in Instr) String() string {
	l := func(x Local) string { return fmt.Sprintf("%%%d", x) }
	switch in.Op {
	case OpConstF:
		return fmt.Sprintf("%s = constf %g", l(in.Dst), in.FImm)
	case OpConstI:
		return fmt.Sprintf("%s = consti %d", l(in.Dst), in.IImm)
	case OpMov:
		return fmt.Sprintf("%s = mov %s", l(in.Dst), l(in.A))
	case OpBinF:
		return fmt.Sprintf("%s = f%s %s, %s", l(in.Dst), in.Bin, l(in.A), l(in.B))
	case OpBinI:
		return fmt.Sprintf("%s = i%s %s, %s", l(in.Dst), in.Bin, l(in.A), l(in.B))
	case OpCmpF:
		return fmt.Sprintf("%s = fcmp.%s %s, %s", l(in.Dst), in.Pred, l(in.A), l(in.B))
	case OpCmpI:
		return fmt.Sprintf("%s = icmp.%s %s, %s", l(in.Dst), in.Pred, l(in.A), l(in.B))
	case OpI2F:
		return fmt.Sprintf("%s = i2f %s", l(in.Dst), l(in.A))
	case OpF2I:
		return fmt.Sprintf("%s = f2i %s", l(in.Dst), l(in.A))
	case OpBuiltin:
		return fmt.Sprintf("%s = %s", l(in.Dst), in.Builtin)
	case OpGEP:
		return fmt.Sprintf("%s = gep %s, %s", l(in.Dst), l(in.A), l(in.B))
	case OpLoad:
		return fmt.Sprintf("%s = load %s", l(in.Dst), l(in.A))
	case OpStore:
		return fmt.Sprintf("store %s, %s", l(in.A), l(in.B))
	case OpAtomicAddF:
		return fmt.Sprintf("atomic.faddstore %s, %s", l(in.A), l(in.B))
	case OpSyncthreads:
		return "syncthreads"
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = l(a)
		}
		call := fmt.Sprintf("call @%s(%s)", in.Callee, strings.Join(args, ", "))
		if in.Dst >= 0 {
			return fmt.Sprintf("%s = %s", l(in.Dst), call)
		}
		return call
	default:
		return fmt.Sprintf("<op %d>", in.Op)
	}
}

// String renders one terminator.
func (t Terminator) String() string {
	switch t.Kind {
	case TermBr:
		return fmt.Sprintf("br b%d", t.Target)
	case TermCondBr:
		return fmt.Sprintf("condbr %%%d, b%d, b%d", t.Cond, t.Target, t.Else)
	case TermRet:
		if t.HasVal {
			return fmt.Sprintf("ret %%%d", t.Val)
		}
		return "ret"
	default:
		return fmt.Sprintf("<term %d>", t.Kind)
	}
}

// String renders the whole module: every function in insertion order,
// separated by blank lines. Parse round-trips this exactly.
func (m *Module) String() string {
	var b strings.Builder
	for i, f := range m.Functions() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}
