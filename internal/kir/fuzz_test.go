package kir

import (
	"testing"
)

// FuzzKirParse feeds arbitrary text to the IR assembler. Two properties:
//
//  1. Parse never panics — malformed input must come back as an error
//     (index guards on short instruction lines, Verify on semantic
//     breakage);
//  2. accepted modules reach a printing fixed point: Parse(m.String())
//     succeeds and prints identically (the round-trip contract the
//     package documents).
func FuzzKirParse(f *testing.F) {
	f.Add("kernel k(f64* buf, i64 n) {\nb0:\n  ret\n}\n")
	f.Add("kernel k() {\n  locals %0:i64\nb0:\n  %0 = consti 4\n  condbr %0, b1, b2\nb1:\n  br b3\nb2:\n  br b3\nb3:\n  ret\n}\n")
	f.Add("device d(f64 x) -> f64 {\nb0:\n  ret %0\n}\n")
	f.Add("kernel k(f64* p) {\n  locals %1:i64 %2:f64\nb0:\n  %1 = global.id.x\n  %2 = constf 1.5\n  %3 = gep %0, %1\n  store %3, %2\n  ret\n}\n")
	f.Add("kernel k(f64* p) {\n  locals %1:i64 %2:f64 %3:f64* %4:f64\nb0:\n  %1 = threadIdx.x\n  %2 = constf 0\n  %3 = gep %0, %1\n  store %3, %2\n  syncthreads\n  %4 = load %3\n  ret\n}\n")
	f.Add("kernel k(f64* a, f64* b) {\n  locals %2:i64\nb0:\n  %2 = globalId.x\n  syncthreads\n  br b1\nb1:\n  syncthreads\n  ret\n}\n")
	f.Add("kernel k() {\nb0:\n  syncthreads %0\n}\n")
	f.Add("kernel k() {\nb0:\n  store\n}\n")
	f.Add("kernel k() {\nb0:\n  br\n}\n")
	f.Add("kernel k() {\nb0:\n  %0 = constf\n}\n")
	f.Add("kernel k() {\nb0:\n  %0 = consti\n}\n")
	f.Add("kernel k() {\nb0:\n  atomic.faddstore %0\n}\n")
	f.Add("kernel k() {\nb0:\n  call @f(%0,)\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		printed := m.String()
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parse of printed module failed: %v\n--- printed ---\n%s", err, printed)
		}
		if again := m2.String(); again != printed {
			t.Fatalf("printing is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s",
				printed, again)
		}
		// Accepted modules always verify (Parse runs Verify); the
		// round-tripped module must too.
		if err := Verify(m2); err != nil {
			t.Fatalf("round-tripped module does not verify: %v", err)
		}
	})
}
