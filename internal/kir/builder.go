package kir

import "fmt"

// FuncBuilder constructs a Function block by block. It is the low-level
// API; most kernels are written with the Emitter on top of it.
type FuncBuilder struct {
	f   *Function
	cur int
}

// NewFunction starts building a function. Parameters become locals
// [0, len(params)).
func NewFunction(name string, params []Param, ret Type) *FuncBuilder {
	f := &Function{Name: name, Params: params, RetType: ret}
	for _, p := range params {
		f.LocalTypes = append(f.LocalTypes, p.Type)
	}
	fb := &FuncBuilder{f: f, cur: -1}
	fb.NewBlock("entry")
	return fb
}

// Kernel marks the function as a launchable entry point.
func (fb *FuncBuilder) Kernel() *FuncBuilder {
	fb.f.Kernel = true
	return fb
}

// Func returns the function under construction.
func (fb *FuncBuilder) Func() *Function { return fb.f }

// Param returns the local holding the named parameter.
func (fb *FuncBuilder) Param(name string) Local {
	i := fb.f.ParamIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("kir: function %q has no parameter %q", fb.f.Name, name))
	}
	return Local(i)
}

// NewLocal allocates a fresh local slot of type t.
func (fb *FuncBuilder) NewLocal(t Type) Local {
	fb.f.LocalTypes = append(fb.f.LocalTypes, t)
	return Local(len(fb.f.LocalTypes) - 1)
}

// TypeOf returns the static type of l.
func (fb *FuncBuilder) TypeOf(l Local) Type { return fb.f.LocalTypes[l] }

// NewBlock appends a new basic block, makes it current, and returns its
// index. The block is created unterminated; the builder must set a
// terminator before switching away permanently (Verify checks this).
func (fb *FuncBuilder) NewBlock(name string) int {
	fb.f.Blocks = append(fb.f.Blocks, &Block{
		Name: name,
		// Default terminator: return void. Explicit terminators overwrite it.
		Term: Terminator{Kind: TermRet},
	})
	fb.cur = len(fb.f.Blocks) - 1
	return fb.cur
}

// SetBlock switches the insertion point to block idx.
func (fb *FuncBuilder) SetBlock(idx int) { fb.cur = idx }

// CurrentBlock returns the insertion block index.
func (fb *FuncBuilder) CurrentBlock() int { return fb.cur }

func (fb *FuncBuilder) emit(in Instr) {
	b := fb.f.Blocks[fb.cur]
	b.Instrs = append(b.Instrs, in)
}

// ConstF emits dst <- imm.
func (fb *FuncBuilder) ConstF(dst Local, imm float64) {
	fb.emit(Instr{Op: OpConstF, Dst: dst, FImm: imm})
}

// ConstI emits dst <- imm.
func (fb *FuncBuilder) ConstI(dst Local, imm int64) {
	fb.emit(Instr{Op: OpConstI, Dst: dst, IImm: imm})
}

// Mov emits dst <- src.
func (fb *FuncBuilder) Mov(dst, src Local) {
	fb.emit(Instr{Op: OpMov, Dst: dst, A: src})
}

// BinF emits dst <- a op b on floats.
func (fb *FuncBuilder) BinF(dst Local, op BinOp, a, b Local) {
	fb.emit(Instr{Op: OpBinF, Dst: dst, Bin: op, A: a, B: b})
}

// BinI emits dst <- a op b on ints.
func (fb *FuncBuilder) BinI(dst Local, op BinOp, a, b Local) {
	fb.emit(Instr{Op: OpBinI, Dst: dst, Bin: op, A: a, B: b})
}

// CmpF emits dst <- a pred b on floats.
func (fb *FuncBuilder) CmpF(dst Local, p Pred, a, b Local) {
	fb.emit(Instr{Op: OpCmpF, Dst: dst, Pred: p, A: a, B: b})
}

// CmpI emits dst <- a pred b on ints.
func (fb *FuncBuilder) CmpI(dst Local, p Pred, a, b Local) {
	fb.emit(Instr{Op: OpCmpI, Dst: dst, Pred: p, A: a, B: b})
}

// I2F emits dst <- float(src).
func (fb *FuncBuilder) I2F(dst, src Local) { fb.emit(Instr{Op: OpI2F, Dst: dst, A: src}) }

// F2I emits dst <- int(src).
func (fb *FuncBuilder) F2I(dst, src Local) { fb.emit(Instr{Op: OpF2I, Dst: dst, A: src}) }

// Builtin emits dst <- builtin.
func (fb *FuncBuilder) Builtin(dst Local, b Builtin) {
	fb.emit(Instr{Op: OpBuiltin, Dst: dst, Builtin: b})
}

// GEP emits dst <- base + idx*sizeof(elem).
func (fb *FuncBuilder) GEP(dst, base, idx Local) {
	fb.emit(Instr{Op: OpGEP, Dst: dst, A: base, B: idx})
}

// Load emits dst <- *ptr.
func (fb *FuncBuilder) Load(dst, ptr Local) {
	fb.emit(Instr{Op: OpLoad, Dst: dst, A: ptr})
}

// Store emits *ptr <- val.
func (fb *FuncBuilder) Store(ptr, val Local) {
	fb.emit(Instr{Op: OpStore, A: ptr, B: val})
}

// AtomicAddF emits an atomic *ptr += val on a float pointee.
func (fb *FuncBuilder) AtomicAddF(ptr, val Local) {
	fb.emit(Instr{Op: OpAtomicAddF, A: ptr, B: val})
}

// Syncthreads emits a block-level barrier.
func (fb *FuncBuilder) Syncthreads() {
	fb.emit(Instr{Op: OpSyncthreads})
}

// Call emits a void call.
func (fb *FuncBuilder) Call(callee string, args ...Local) {
	fb.emit(Instr{Op: OpCall, Dst: -1, Callee: callee, Args: args})
}

// CallRet emits dst <- call callee(args...).
func (fb *FuncBuilder) CallRet(dst Local, callee string, args ...Local) {
	fb.emit(Instr{Op: OpCall, Dst: dst, Callee: callee, Args: args})
}

// Br terminates the current block with an unconditional jump.
func (fb *FuncBuilder) Br(target int) {
	fb.f.Blocks[fb.cur].Term = Terminator{Kind: TermBr, Target: target}
}

// CondBr terminates the current block with a conditional jump.
func (fb *FuncBuilder) CondBr(cond Local, then, els int) {
	fb.f.Blocks[fb.cur].Term = Terminator{Kind: TermCondBr, Cond: cond, Target: then, Else: els}
}

// Ret terminates the current block with a void return.
func (fb *FuncBuilder) Ret() {
	fb.f.Blocks[fb.cur].Term = Terminator{Kind: TermRet}
}

// RetVal terminates the current block returning val.
func (fb *FuncBuilder) RetVal(val Local) {
	fb.f.Blocks[fb.cur].Term = Terminator{Kind: TermRet, Val: val, HasVal: true}
}
