// Package kir defines the kernel intermediate representation that stands
// in for LLVM IR device code in this reproduction.
//
// Kernels are functions over typed local slots organized into basic
// blocks, with explicit loads/stores through pointers, pointer arithmetic
// (GEP), calls to device functions (nested kernels, paper Fig. 8), and
// CUDA-style thread/block builtins. Two consumers share the IR:
//
//   - kaccess runs the compiler pass of the paper: an interprocedural
//     forward dataflow analysis that derives, per kernel pointer argument,
//     whether the kernel may read and/or write through it.
//   - kinterp executes kernels over a launch grid against the simulated
//     address space (the "GPU").
package kir

import "fmt"

// Type is the static type of a parameter or local slot.
type Type uint8

const (
	// TInvalid is the zero Type.
	TInvalid Type = iota
	// TFloat is a 64-bit floating point scalar.
	TFloat
	// TInt is a 64-bit signed integer scalar.
	TInt
	// TPtrF64 points to float64 elements.
	TPtrF64
	// TPtrI64 points to int64 elements.
	TPtrI64
	// TPtrI32 points to int32 elements.
	TPtrI32
	// TPtrU8 points to byte elements.
	TPtrU8
)

// IsPtr reports whether t is a pointer type.
func (t Type) IsPtr() bool { return t >= TPtrF64 }

// ElemSize returns the pointee size in bytes for pointer types, 0 otherwise.
func (t Type) ElemSize() int64 {
	switch t {
	case TPtrF64, TPtrI64:
		return 8
	case TPtrI32:
		return 4
	case TPtrU8:
		return 1
	default:
		return 0
	}
}

// ElemFloat reports whether the pointee is floating point.
func (t Type) ElemFloat() bool { return t == TPtrF64 }

func (t Type) String() string {
	switch t {
	case TFloat:
		return "f64"
	case TInt:
		return "i64"
	case TPtrF64:
		return "f64*"
	case TPtrI64:
		return "i64*"
	case TPtrI32:
		return "i32*"
	case TPtrU8:
		return "u8*"
	default:
		return "invalid"
	}
}

// Local identifies a local slot within a function.
type Local int

// Param declares one function parameter.
type Param struct {
	Name string
	Type Type
}

// Opcode enumerates instruction kinds.
type Opcode uint8

const (
	// OpConstF : dst <- float constant.
	OpConstF Opcode = iota
	// OpConstI : dst <- int constant.
	OpConstI
	// OpMov : dst <- src (same type).
	OpMov
	// OpBinF : dst <- a <fop> b on floats.
	OpBinF
	// OpBinI : dst <- a <iop> b on ints.
	OpBinI
	// OpCmpF : int dst <- a <pred> b on floats (0/1).
	OpCmpF
	// OpCmpI : int dst <- a <pred> b on ints (0/1).
	OpCmpI
	// OpI2F : float dst <- int src.
	OpI2F
	// OpF2I : int dst <- float src (truncating).
	OpF2I
	// OpBuiltin : int dst <- thread/block builtin.
	OpBuiltin
	// OpGEP : ptr dst <- ptr a + b*elemsize (b is an int local).
	OpGEP
	// OpLoad : dst <- *a (dst type matches pointee).
	OpLoad
	// OpStore : *a <- b.
	OpStore
	// OpCall : [dst <-] call Callee(Args...).
	OpCall
	// OpAtomicAddF : atomically *a += b (float pointee); used by
	// reduction kernels.
	OpAtomicAddF
	// OpSyncthreads : __syncthreads() block-level barrier. All threads of
	// one block reach the barrier before any proceeds; accesses of the
	// same block separated by a barrier are ordered (no race), while
	// threads of different blocks are never ordered by it. It has no
	// operands.
	OpSyncthreads
)

// BinOp enumerates arithmetic operators (meaning depends on OpBinF/OpBinI).
type BinOp uint8

// Arithmetic operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem // ints only
	Min
	Max
	And // ints only
	Or  // ints only
	Shl // ints only
	Shr // ints only
)

func (o BinOp) String() string {
	return [...]string{"add", "sub", "mul", "div", "rem", "min", "max", "and", "or", "shl", "shr"}[o]
}

// Pred enumerates comparison predicates.
type Pred uint8

// Comparison predicates.
const (
	Eq Pred = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (p Pred) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[p]
}

// Builtin enumerates CUDA thread-geometry builtins.
type Builtin uint8

// Thread-geometry builtins (x/y dimensions).
const (
	ThreadIdxX Builtin = iota
	ThreadIdxY
	BlockIdxX
	BlockIdxY
	BlockDimX
	BlockDimY
	GridDimX
	GridDimY
	// GlobalIdX is blockIdx.x*blockDim.x + threadIdx.x, precomputed for
	// convenience.
	GlobalIdX
	// GlobalIdY is the y analog.
	GlobalIdY
)

func (b Builtin) String() string {
	return [...]string{
		"threadIdx.x", "threadIdx.y", "blockIdx.x", "blockIdx.y",
		"blockDim.x", "blockDim.y", "gridDim.x", "gridDim.y",
		"globalId.x", "globalId.y",
	}[b]
}

// Instr is one non-terminator instruction.
type Instr struct {
	Op      Opcode
	Dst     Local
	A, B    Local
	FImm    float64
	IImm    int64
	Bin     BinOp
	Pred    Pred
	Builtin Builtin
	Callee  string
	Args    []Local
}

// TermKind enumerates block terminators.
type TermKind uint8

const (
	// TermBr jumps unconditionally to Target.
	TermBr TermKind = iota
	// TermCondBr jumps to Target if Cond != 0, else to Else.
	TermCondBr
	// TermRet returns, optionally with value Val (if HasVal).
	TermRet
)

// Terminator ends a basic block.
type Terminator struct {
	Kind   TermKind
	Cond   Local
	Target int
	Else   int
	Val    Local
	HasVal bool
}

// Block is a basic block: straight-line instructions plus one terminator.
type Block struct {
	Name   string
	Instrs []Instr
	Term   Terminator
}

// Function is a device function or kernel entry.
type Function struct {
	Name string
	// Params occupy locals [0, len(Params)).
	Params []Param
	// LocalTypes types every local slot, including parameters.
	LocalTypes []Type
	// RetType is TInvalid for void functions.
	RetType Type
	Blocks  []*Block
	// Kernel marks launchable entry points (as opposed to device-only
	// functions callable from other kernels).
	Kernel bool
}

// NumParams returns the parameter count.
func (f *Function) NumParams() int { return len(f.Params) }

// ParamIndex returns the index of the named parameter, or -1.
func (f *Function) ParamIndex(name string) int {
	for i, p := range f.Params {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Module is a set of functions compiled together ("fat binary" analog).
type Module struct {
	funcs map[string]*Function
	order []string
}

// NewModule creates an empty module.
func NewModule() *Module {
	return &Module{funcs: make(map[string]*Function)}
}

// Add registers a function. Duplicate names panic: the toolchain builds
// modules programmatically and a duplicate is a build bug.
func (m *Module) Add(f *Function) {
	if _, dup := m.funcs[f.Name]; dup {
		panic(fmt.Sprintf("kir: duplicate function %q", f.Name))
	}
	m.funcs[f.Name] = f
	m.order = append(m.order, f.Name)
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Function { return m.funcs[name] }

// Functions returns all functions in insertion order.
func (m *Module) Functions() []*Function {
	out := make([]*Function, 0, len(m.order))
	for _, n := range m.order {
		out = append(out, m.funcs[n])
	}
	return out
}

// Kernels returns the launchable entry points in insertion order.
func (m *Module) Kernels() []*Function {
	var out []*Function
	for _, f := range m.Functions() {
		if f.Kernel {
			out = append(out, f)
		}
	}
	return out
}
