package kir

import (
	"strings"
	"testing"
)

// buildCopyKernel returns kernel out[i] = in[i] for i < n.
func buildCopyKernel() *Function {
	return KernelFunc("copy", []Param{
		{Name: "out", Type: TPtrF64},
		{Name: "in", Type: TPtrF64},
		{Name: "n", Type: TInt},
	}, func(e *Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("out"), i, e.LoadIdx(e.Arg("in"), i))
		})
	})
}

func TestModuleAddAndLookup(t *testing.T) {
	m := NewModule()
	f := buildCopyKernel()
	m.Add(f)
	if m.Func("copy") != f {
		t.Fatal("lookup failed")
	}
	if m.Func("nope") != nil {
		t.Fatal("unknown function not nil")
	}
	if len(m.Kernels()) != 1 || len(m.Functions()) != 1 {
		t.Fatal("listing wrong")
	}
}

func TestModuleDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate add")
		}
	}()
	m := NewModule()
	m.Add(buildCopyKernel())
	m.Add(buildCopyKernel())
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	m := NewModule()
	m.Add(buildCopyKernel())
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTypeMismatch(t *testing.T) {
	fb := NewFunction("bad", []Param{{Name: "p", Type: TPtrF64}}, TInvalid)
	i := fb.NewLocal(TInt)
	fb.ConstI(i, 1)
	fb.Load(i, fb.Param("p")) // loading f64 into an int local
	m := NewModule()
	m.Add(fb.Func())
	if err := Verify(m); err == nil {
		t.Fatal("expected verify error for load type mismatch")
	}
}

func TestVerifyRejectsUnknownCallee(t *testing.T) {
	fb := NewFunction("caller", nil, TInvalid)
	fb.Call("missing")
	m := NewModule()
	m.Add(fb.Func())
	if err := Verify(m); err == nil {
		t.Fatal("expected verify error for unknown callee")
	}
}

func TestVerifyRejectsArityMismatch(t *testing.T) {
	m := NewModule()
	callee := NewFunction("callee", []Param{{Name: "x", Type: TInt}}, TInvalid)
	m.Add(callee.Func())
	fb := NewFunction("caller", nil, TInvalid)
	fb.Call("callee")
	m.Add(fb.Func())
	if err := Verify(m); err == nil {
		t.Fatal("expected verify error for arity mismatch")
	}
}

func TestVerifyRejectsBadBranchTarget(t *testing.T) {
	fb := NewFunction("bad", nil, TInvalid)
	fb.Br(7)
	m := NewModule()
	m.Add(fb.Func())
	if err := Verify(m); err == nil {
		t.Fatal("expected verify error for branch target")
	}
}

func TestVerifyRejectsGEPOnScalar(t *testing.T) {
	fb := NewFunction("bad", []Param{{Name: "x", Type: TInt}}, TInvalid)
	d := fb.NewLocal(TInt)
	fb.GEP(d, fb.Param("x"), fb.Param("x"))
	m := NewModule()
	m.Add(fb.Func())
	if err := Verify(m); err == nil {
		t.Fatal("expected verify error for GEP on scalar")
	}
}

func TestVerifyRejectsMissingReturnValue(t *testing.T) {
	fb := NewFunction("bad", nil, TInt)
	fb.Ret()
	m := NewModule()
	m.Add(fb.Func())
	if err := Verify(m); err == nil {
		t.Fatal("expected verify error for missing return value")
	}
}

func TestVerifyRejectsAtomicOnIntPtr(t *testing.T) {
	fb := NewFunction("bad", []Param{{Name: "p", Type: TPtrI64}}, TInvalid)
	v := fb.NewLocal(TFloat)
	fb.ConstF(v, 1)
	fb.AtomicAddF(fb.Param("p"), v)
	m := NewModule()
	m.Add(fb.Func())
	if err := Verify(m); err == nil {
		t.Fatal("expected verify error for atomicAddF on i64*")
	}
}

func TestTypeHelpers(t *testing.T) {
	if !TPtrF64.IsPtr() || TInt.IsPtr() {
		t.Error("IsPtr wrong")
	}
	if TPtrF64.ElemSize() != 8 || TPtrI32.ElemSize() != 4 || TPtrU8.ElemSize() != 1 {
		t.Error("ElemSize wrong")
	}
	if TFloat.ElemSize() != 0 {
		t.Error("scalar ElemSize must be 0")
	}
	if !TPtrF64.ElemFloat() || TPtrI64.ElemFloat() {
		t.Error("ElemFloat wrong")
	}
}

func TestPrinterOutput(t *testing.T) {
	f := buildCopyKernel()
	s := f.String()
	for _, want := range []string{"kernel copy", "f64* out", "load", "store", "condbr", "globalId.x"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
}

func TestEmitterForLoopStructure(t *testing.T) {
	f := KernelFunc("loop", []Param{
		{Name: "out", Type: TPtrF64},
		{Name: "n", Type: TInt},
	}, func(e *Emitter) {
		e.For(e.ConstI(0), e.Arg("n"), e.ConstI(1), func(i Value) {
			e.StoreIdx(e.Arg("out"), i, e.ToFloat(i))
		})
	})
	m := NewModule()
	m.Add(f)
	if err := Verify(m); err != nil {
		t.Fatalf("loop kernel does not verify: %v", err)
	}
	if len(f.Blocks) < 4 {
		t.Fatalf("expected >=4 blocks for a loop, got %d", len(f.Blocks))
	}
}

func TestEmitterIfElse(t *testing.T) {
	f := KernelFunc("sel", []Param{
		{Name: "out", Type: TPtrF64},
		{Name: "x", Type: TInt},
	}, func(e *Emitter) {
		zero := e.ConstI(0)
		e.IfElse(e.Gt(e.Arg("x"), zero),
			func() { e.StoreIdx(e.Arg("out"), zero, e.ConstF(1)) },
			func() { e.StoreIdx(e.Arg("out"), zero, e.ConstF(-1)) },
		)
	})
	m := NewModule()
	m.Add(f)
	if err := Verify(m); err != nil {
		t.Fatalf("if/else kernel does not verify: %v", err)
	}
}

func TestEmitterTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic mixing float and int operands")
		}
	}()
	KernelFunc("bad", []Param{{Name: "n", Type: TInt}}, func(e *Emitter) {
		e.Add(e.Arg("n"), e.ConstF(1))
	})
}

func TestParamIndex(t *testing.T) {
	f := buildCopyKernel()
	if f.ParamIndex("in") != 1 || f.ParamIndex("nope") != -1 {
		t.Fatal("ParamIndex wrong")
	}
}
