package kir

import "fmt"

// Emitter is an expression-level convenience layer over FuncBuilder,
// letting kernels be written the way CUDA C reads. Every Value is a typed
// local; arithmetic helpers allocate result locals and emit instructions
// into the current block. Structured control flow (If/For/While) manages
// basic blocks and terminators.
type Emitter struct {
	FB *FuncBuilder
}

// Value wraps a local for the expression API.
type Value struct {
	l Local
	t Type
}

// Local returns the underlying local slot.
func (v Value) Local() Local { return v.l }

// Type returns the value's static type.
func (v Value) Type() Type { return v.t }

// NewEmitter wraps a FuncBuilder.
func NewEmitter(fb *FuncBuilder) *Emitter { return &Emitter{FB: fb} }

// KernelFunc builds a kernel with the Emitter: params are declared, the
// body closure emits code, and the finished function is returned.
func KernelFunc(name string, params []Param, body func(e *Emitter)) *Function {
	fb := NewFunction(name, params, TInvalid).Kernel()
	e := NewEmitter(fb)
	body(e)
	return fb.Func()
}

// DeviceFunc builds a non-kernel device function, optionally returning a
// value produced by body.
func DeviceFunc(name string, params []Param, ret Type, body func(e *Emitter)) *Function {
	fb := NewFunction(name, params, ret)
	e := NewEmitter(fb)
	body(e)
	return fb.Func()
}

// Arg returns the named parameter as a Value.
func (e *Emitter) Arg(name string) Value {
	l := e.FB.Param(name)
	return Value{l: l, t: e.FB.TypeOf(l)}
}

// Var allocates a fresh mutable local of type t.
func (e *Emitter) Var(t Type) Value {
	return Value{l: e.FB.NewLocal(t), t: t}
}

// ConstF materializes a float constant.
func (e *Emitter) ConstF(x float64) Value {
	v := e.Var(TFloat)
	e.FB.ConstF(v.l, x)
	return v
}

// ConstI materializes an int constant.
func (e *Emitter) ConstI(x int64) Value {
	v := e.Var(TInt)
	e.FB.ConstI(v.l, x)
	return v
}

// Assign copies src into dst (same types).
func (e *Emitter) Assign(dst, src Value) {
	if dst.t != src.t {
		panic(fmt.Sprintf("kir: Assign type mismatch %v <- %v", dst.t, src.t))
	}
	e.FB.Mov(dst.l, src.l)
}

func (e *Emitter) bin(op BinOp, a, b Value) Value {
	if a.t != b.t {
		panic(fmt.Sprintf("kir: binop operand mismatch %v vs %v", a.t, b.t))
	}
	v := e.Var(a.t)
	switch a.t {
	case TFloat:
		e.FB.BinF(v.l, op, a.l, b.l)
	case TInt:
		e.FB.BinI(v.l, op, a.l, b.l)
	default:
		panic(fmt.Sprintf("kir: binop on %v", a.t))
	}
	return v
}

// Add returns a+b.
func (e *Emitter) Add(a, b Value) Value { return e.bin(Add, a, b) }

// Sub returns a-b.
func (e *Emitter) Sub(a, b Value) Value { return e.bin(Sub, a, b) }

// Mul returns a*b.
func (e *Emitter) Mul(a, b Value) Value { return e.bin(Mul, a, b) }

// Div returns a/b.
func (e *Emitter) Div(a, b Value) Value { return e.bin(Div, a, b) }

// Rem returns a%b (ints).
func (e *Emitter) Rem(a, b Value) Value { return e.bin(Rem, a, b) }

// Min returns min(a,b).
func (e *Emitter) Min(a, b Value) Value { return e.bin(Min, a, b) }

// Max returns max(a,b).
func (e *Emitter) Max(a, b Value) Value { return e.bin(Max, a, b) }

func (e *Emitter) cmp(p Pred, a, b Value) Value {
	if a.t != b.t {
		panic(fmt.Sprintf("kir: cmp operand mismatch %v vs %v", a.t, b.t))
	}
	v := e.Var(TInt)
	switch a.t {
	case TFloat:
		e.FB.CmpF(v.l, p, a.l, b.l)
	case TInt:
		e.FB.CmpI(v.l, p, a.l, b.l)
	default:
		panic(fmt.Sprintf("kir: cmp on %v", a.t))
	}
	return v
}

// Eq returns a==b as 0/1.
func (e *Emitter) Eq(a, b Value) Value { return e.cmp(Eq, a, b) }

// Ne returns a!=b.
func (e *Emitter) Ne(a, b Value) Value { return e.cmp(Ne, a, b) }

// Lt returns a<b.
func (e *Emitter) Lt(a, b Value) Value { return e.cmp(Lt, a, b) }

// Le returns a<=b.
func (e *Emitter) Le(a, b Value) Value { return e.cmp(Le, a, b) }

// Gt returns a>b.
func (e *Emitter) Gt(a, b Value) Value { return e.cmp(Gt, a, b) }

// Ge returns a>=b.
func (e *Emitter) Ge(a, b Value) Value { return e.cmp(Ge, a, b) }

// AndI returns a&b for 0/1 conditions.
func (e *Emitter) AndI(a, b Value) Value { return e.bin(And, a, b) }

// OrI returns a|b for 0/1 conditions.
func (e *Emitter) OrI(a, b Value) Value { return e.bin(Or, a, b) }

// ToFloat converts an int value to float.
func (e *Emitter) ToFloat(a Value) Value {
	v := e.Var(TFloat)
	e.FB.I2F(v.l, a.l)
	return v
}

// ToInt converts a float value to int (truncating).
func (e *Emitter) ToInt(a Value) Value {
	v := e.Var(TInt)
	e.FB.F2I(v.l, a.l)
	return v
}

// Builtin reads a thread-geometry builtin.
func (e *Emitter) Builtin(b Builtin) Value {
	v := e.Var(TInt)
	e.FB.Builtin(v.l, b)
	return v
}

// GlobalIDX returns blockIdx.x*blockDim.x + threadIdx.x.
func (e *Emitter) GlobalIDX() Value { return e.Builtin(GlobalIdX) }

// GlobalIDY returns the y analog.
func (e *Emitter) GlobalIDY() Value { return e.Builtin(GlobalIdY) }

// GEP returns base+idx (element-scaled pointer arithmetic).
func (e *Emitter) GEP(base, idx Value) Value {
	if !base.t.IsPtr() {
		panic("kir: GEP base is not a pointer")
	}
	v := e.Var(base.t)
	e.FB.GEP(v.l, base.l, idx.l)
	return v
}

// Load returns *ptr.
func (e *Emitter) Load(ptr Value) Value {
	t := TInt
	if ptr.t.ElemFloat() {
		t = TFloat
	}
	v := e.Var(t)
	e.FB.Load(v.l, ptr.l)
	return v
}

// LoadIdx returns ptr[idx].
func (e *Emitter) LoadIdx(ptr, idx Value) Value { return e.Load(e.GEP(ptr, idx)) }

// Store writes *ptr = val.
func (e *Emitter) Store(ptr, val Value) { e.FB.Store(ptr.l, val.l) }

// StoreIdx writes ptr[idx] = val.
func (e *Emitter) StoreIdx(ptr, idx, val Value) { e.Store(e.GEP(ptr, idx), val) }

// AtomicAddF emits an atomic *ptr += val.
func (e *Emitter) AtomicAddF(ptr, val Value) { e.FB.AtomicAddF(ptr.l, val.l) }

// Syncthreads emits a block-level barrier (__syncthreads()).
func (e *Emitter) Syncthreads() { e.FB.Syncthreads() }

// Call invokes a void device function.
func (e *Emitter) Call(callee string, args ...Value) {
	locals := make([]Local, len(args))
	for i, a := range args {
		locals[i] = a.l
	}
	e.FB.Call(callee, locals...)
}

// CallRet invokes a device function and returns its result. The caller
// supplies the static return type (checked by Verify against the callee).
func (e *Emitter) CallRet(callee string, ret Type, args ...Value) Value {
	locals := make([]Local, len(args))
	for i, a := range args {
		locals[i] = a.l
	}
	v := e.Var(ret)
	e.FB.CallRet(v.l, callee, locals...)
	return v
}

// Return emits a void return and leaves the emitter in a fresh
// (unreachable) block so further emission is well-formed.
func (e *Emitter) Return() {
	e.FB.Ret()
	e.FB.NewBlock("post.ret")
}

// ReturnVal emits a value return. The fresh (unreachable) follow-up block
// is given a well-typed terminator returning the same value so the
// function verifies even when ReturnVal ends the body.
func (e *Emitter) ReturnVal(v Value) {
	e.FB.RetVal(v.l)
	e.FB.NewBlock("post.ret")
	e.FB.RetVal(v.l)
}

// If emits structured if/then: body runs when cond != 0.
func (e *Emitter) If(cond Value, body func()) {
	e.IfElse(cond, body, nil)
}

// IfElse emits structured if/then/else.
func (e *Emitter) IfElse(cond Value, thenBody, elseBody func()) {
	fb := e.FB
	head := fb.CurrentBlock()
	thenBlk := fb.NewBlock("if.then")
	thenBody()
	thenEnd := fb.CurrentBlock()

	elseBlk := -1
	elseEnd := -1
	if elseBody != nil {
		elseBlk = fb.NewBlock("if.else")
		elseBody()
		elseEnd = fb.CurrentBlock()
	}
	join := fb.NewBlock("if.join")

	fb.SetBlock(head)
	if elseBlk >= 0 {
		fb.CondBr(cond.l, thenBlk, elseBlk)
	} else {
		fb.CondBr(cond.l, thenBlk, join)
	}
	fb.SetBlock(thenEnd)
	fb.Br(join)
	if elseEnd >= 0 {
		fb.SetBlock(elseEnd)
		fb.Br(join)
	}
	fb.SetBlock(join)
}

// For emits a counted loop: for i := from; i < to; i += step { body(i) }.
// The induction variable is a fresh int local passed to body.
func (e *Emitter) For(from, to, step Value, body func(i Value)) {
	fb := e.FB
	i := e.Var(TInt)
	e.Assign(i, from)
	pred := fb.CurrentBlock()
	head := fb.NewBlock("for.head")
	fb.SetBlock(pred)
	fb.Br(head)
	fb.SetBlock(head)
	cond := e.Lt(i, to)
	condEnd := fb.CurrentBlock()
	bodyBlk := fb.NewBlock("for.body")
	body(i)
	e.Assign(i, e.Add(i, step))
	bodyEnd := fb.CurrentBlock()
	exit := fb.NewBlock("for.exit")

	fb.SetBlock(condEnd)
	fb.CondBr(cond.l, bodyBlk, exit)
	fb.SetBlock(bodyEnd)
	fb.Br(head)
	fb.SetBlock(exit)
}
