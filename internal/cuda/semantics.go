package cuda

import "cusango/internal/memspace"

// The synchronization-semantics table.
//
// The paper (§III-B2, §VI-A) stresses that implicit synchronization
// behaviour of CUDA memory operations is complex, depends on memory kind
// and transfer direction, and must be verified per supported call. This
// file is the machine-readable transcription of that manually verified
// knowledge (CUDA 11.5 documentation, "API synchronization behavior"):
//
//	cudaMemcpy (synchronous variant):
//	  - transfers involving pageable host memory: synchronous w.r.t. host
//	    (staged through a host buffer)
//	  - transfers from pinned host memory to device: synchronous once the
//	    copy completes — still host-synchronizing for race purposes
//	  - device-to-device copies: NO host synchronization is performed
//	cudaMemcpyAsync: asynchronous w.r.t. host. The documentation notes
//	  "may be synchronous" cases (pageable staging); the paper interprets
//	  those pessimistically for race detection — a tool must not assume
//	  an ordering the API does not guarantee — so: never host-syncing.
//	cudaMemset: asynchronous w.r.t. host for device memory, but
//	  SYNCHRONOUS when operating on pinned host memory (paper §III-C).
//	cudaMemsetAsync: asynchronous.
//	cudaFree: synchronizes the host with all streams of the device;
//	  cudaFreeAsync does not (paper §III-B2).
//
// Managed memory follows the device-memory rows: operations on it must be
// explicitly synchronized (paper §III-C).

func deviceSide(k memspace.Kind) bool {
	return k == memspace.KindDevice || k == memspace.KindManaged
}

// MemcpySyncsHost reports whether a memcpy with the given endpoint kinds
// blocks the host until the transfer completed.
func MemcpySyncsHost(dst, src memspace.Kind, async bool) bool {
	if async {
		// Pessimistic interpretation of "may be synchronous": assume no
		// ordering guarantee (paper §III-B2).
		return false
	}
	if deviceSide(dst) && deviceSide(src) {
		// D2D: no host synchronization is performed.
		return false
	}
	return true
}

// MemsetSyncsHost reports whether a memset on the given kind blocks the
// host.
func MemsetSyncsHost(k memspace.Kind, async bool) bool {
	if async {
		return false
	}
	// Pinned host memory: synchronizes with the host. Pageable host or
	// device/managed targets: generally asynchronous (paper §III-C).
	return k == memspace.KindHostPinned
}

// FreeSyncsHost reports whether the free variant synchronizes the host
// across all streams.
func FreeSyncsHost(async bool) bool { return !async }
