// Package cuda simulates the CUDA runtime API surface that CuSan
// intercepts (paper §III): devices, streams with legacy default-stream
// semantics, events, kernel launches, memory management across the UVA
// kinds, and memory operations with their documented implicit
// synchronization behaviour.
//
// Execution is eager and deterministic: enqueuing an operation runs it
// immediately on the simulated device (per-stream FIFO order is thereby
// trivially preserved). Concurrency is modeled *logically* by the
// correctness tooling — CuSan maps streams to TSan fibers — exactly as a
// dynamic race detector observes one concrete interleaving while
// reasoning about all synchronization-free reorderings. A missing
// synchronization therefore never corrupts simulated data, but is still
// detected as a race.
//
// The Hooks interface is the compiler-instrumentation analog: the
// toolchain "links" a tool runtime (CuSan) by installing hooks, which
// receive the same arguments the paper's inserted callbacks carry
// (kernel args + access attributes, stream, event ids, memory movement
// attributes; §IV-B2).
package cuda

import (
	"errors"
	"fmt"
	"sync"

	"cusango/internal/faults"
	"cusango/internal/kaccess"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// Sentinel errors (cudaError analogs).
var (
	// ErrInvalidValue reports a bad argument (cudaErrorInvalidValue).
	ErrInvalidValue = errors.New("cuda: invalid value")
	// ErrInvalidHandle reports use of a destroyed or foreign stream or
	// event (cudaErrorInvalidResourceHandle).
	ErrInvalidHandle = errors.New("cuda: invalid resource handle")
	// ErrInvalidPointer reports a pointer outside any live allocation or
	// of the wrong memory kind for the operation.
	ErrInvalidPointer = errors.New("cuda: invalid device pointer")
	// ErrMemoryAllocation reports an exhausted device or host allocation
	// (cudaErrorMemoryAllocation).
	ErrMemoryAllocation = errors.New("cuda: out of memory")
	// ErrLaunchFailure reports a kernel that failed to launch
	// (cudaErrorLaunchFailure).
	ErrLaunchFailure = errors.New("cuda: kernel launch failure")
)

// Stream is a CUDA stream handle. The zero-id stream of a device is the
// legacy default stream.
type Stream struct {
	id          int
	nonBlocking bool
	destroyed   bool
	dev         *Device
}

// ID returns the stream's id; 0 is the default stream.
func (s *Stream) ID() int { return s.id }

// IsDefault reports whether s is the legacy default stream.
func (s *Stream) IsDefault() bool { return s.id == 0 }

// NonBlocking reports whether the stream was created with the
// non-blocking flag (exempt from legacy default-stream barriers).
func (s *Stream) NonBlocking() bool { return s.nonBlocking }

func (s *Stream) String() string {
	if s == nil || s.IsDefault() {
		return "default stream"
	}
	nb := ""
	if s.nonBlocking {
		nb = ", non-blocking"
	}
	return fmt.Sprintf("stream %d%s", s.id, nb)
}

// Event is a CUDA event handle.
type Event struct {
	id        int
	recorded  bool
	stream    *Stream // stream of the last record
	destroyed bool
	dev       *Device
	// asyncDone is the completion channel of the recorded marker
	// (async mode only).
	asyncDone <-chan struct{}
}

// ID returns the event's id.
func (e *Event) ID() int { return e.id }

// Recorded reports whether the event has been recorded at least once.
func (e *Event) Recorded() bool { return e.recorded }

// Stream returns the stream of the most recent record, or nil.
func (e *Event) Stream() *Stream { return e.stream }

// MemOp carries the memory-movement attributes a hook needs to decide
// synchronization behaviour (paper §III-B2, §IV-B2).
type MemOp struct {
	Dst, Src memspace.Addr // Src is 0 for memset
	Bytes    int64
	DstKind  memspace.Kind
	SrcKind  memspace.Kind
	Async    bool
	Stream   *Stream
	// SyncsHost is the semantics-table verdict: does this call block the
	// host until the operation (and, on the legacy default stream, prior
	// work) completes?
	SyncsHost bool
}

// KernelLaunch carries the instrumented launch callback arguments
// (paper Fig. 9): argument values, their access attributes from the
// device-code analysis, and the stream.
type KernelLaunch struct {
	Name   string
	Grid   kinterp.Dim3
	Block  kinterp.Dim3
	Args   []kinterp.Arg
	Params []kir.Param
	Access []kaccess.Access
	Stream *Stream
}

// Hooks is the tool-instrumentation interface. All callbacks run on the
// host goroutine at interception time, before the runtime performs the
// operation (allocation callbacks run after, since they need the
// address). Embed BaseHooks to implement a subset.
type Hooks interface {
	AllocDone(addr memspace.Addr, bytes int64, kind memspace.Kind)
	PreFree(addr memspace.Addr, kind memspace.Kind, syncsHost bool)
	StreamCreated(s *Stream)
	StreamDestroyed(s *Stream)
	EventCreated(e *Event)
	EventDestroyed(e *Event)
	PreEventRecord(e *Event, s *Stream)
	PreEventSynchronize(e *Event)
	PreEventQuery(e *Event)
	PreStreamWaitEvent(s *Stream, e *Event)
	PreStreamSynchronize(s *Stream)
	PreStreamQuery(s *Stream)
	PreDeviceSynchronize()
	PreKernelLaunch(l *KernelLaunch)
	PreMemcpy(op *MemOp)
	PreMemset(op *MemOp)
}

// BaseHooks implements Hooks with no-ops.
type BaseHooks struct{}

// AllocDone implements Hooks.
func (BaseHooks) AllocDone(memspace.Addr, int64, memspace.Kind) {}

// PreFree implements Hooks.
func (BaseHooks) PreFree(memspace.Addr, memspace.Kind, bool) {}

// StreamCreated implements Hooks.
func (BaseHooks) StreamCreated(*Stream) {}

// StreamDestroyed implements Hooks.
func (BaseHooks) StreamDestroyed(*Stream) {}

// EventCreated implements Hooks.
func (BaseHooks) EventCreated(*Event) {}

// EventDestroyed implements Hooks.
func (BaseHooks) EventDestroyed(*Event) {}

// PreEventRecord implements Hooks.
func (BaseHooks) PreEventRecord(*Event, *Stream) {}

// PreEventSynchronize implements Hooks.
func (BaseHooks) PreEventSynchronize(*Event) {}

// PreEventQuery implements Hooks.
func (BaseHooks) PreEventQuery(*Event) {}

// PreStreamWaitEvent implements Hooks.
func (BaseHooks) PreStreamWaitEvent(*Stream, *Event) {}

// PreStreamSynchronize implements Hooks.
func (BaseHooks) PreStreamSynchronize(*Stream) {}

// PreStreamQuery implements Hooks.
func (BaseHooks) PreStreamQuery(*Stream) {}

// PreDeviceSynchronize implements Hooks.
func (BaseHooks) PreDeviceSynchronize() {}

// PreKernelLaunch implements Hooks.
func (BaseHooks) PreKernelLaunch(*KernelLaunch) {}

// PreMemcpy implements Hooks.
func (BaseHooks) PreMemcpy(*MemOp) {}

// PreMemset implements Hooks.
func (BaseHooks) PreMemset(*MemOp) {}

var _ Hooks = BaseHooks{}

// Config tunes the simulated device.
type Config struct {
	// Interp configures the kernel interpreter (worker pool size etc).
	Interp kinterp.Config
	// AsyncStreams switches from eager to genuinely asynchronous stream
	// execution (see async.go). Devices in this mode must be Closed.
	AsyncStreams bool
	// Inject, when non-nil, perturbs the simulated runtime with
	// deterministic faults (allocation failures, launch failures, handle
	// invalidation, async-completion jitter). See internal/faults.
	Inject *faults.Injector
	// Yield, when non-nil, implements the logical delay step used by
	// injected completion jitter (n steps per jittered op). Nil means n
	// goroutine reschedules — wall-clock-independent in either case.
	Yield func(n int)
}

// Device is one simulated GPU attached to a rank's address space, with a
// module of compiled kernels.
type Device struct {
	mem      *memspace.Memory
	eng      *kinterp.Engine
	analysis *kaccess.Result
	hooks    Hooks
	cfg      Config
	def      *Stream
	streams  []*Stream
	events   []*Event

	// async-mode state (see async.go).
	execs      map[int]*streamExec
	asyncErr   error
	asyncErrMu sync.Mutex
}

// NewDevice "compiles" the module for the device: the kernel access
// analysis runs (device-code pass, paper Fig. 7 step 2) and the
// interpreter is prepared. hooks may be nil.
func NewDevice(mem *memspace.Memory, mod *kir.Module, cfg Config, hooks Hooks) (*Device, error) {
	analysis, err := kaccess.Analyze(mod)
	if err != nil {
		return nil, err
	}
	eng, err := kinterp.New(mod, cfg.Interp)
	if err != nil {
		return nil, err
	}
	if hooks == nil {
		hooks = BaseHooks{}
	}
	d := &Device{
		mem: mem, eng: eng, analysis: analysis, hooks: hooks, cfg: cfg,
		execs: make(map[int]*streamExec),
	}
	d.def = &Stream{id: 0, dev: d}
	d.streams = []*Stream{d.def}
	return d, nil
}

// SetHooks replaces the instrumentation hooks (used by the toolchain at
// "link" time). Passing nil uninstalls instrumentation.
func (d *Device) SetHooks(h Hooks) {
	if h == nil {
		h = BaseHooks{}
	}
	d.hooks = h
}

// Memory returns the device's address space.
func (d *Device) Memory() *memspace.Memory { return d.mem }

// Analysis exposes the kernel access analysis (the serialized "kernel
// analysis data" of paper Fig. 7).
func (d *Device) Analysis() *kaccess.Result { return d.analysis }

// DefaultStream returns the legacy default stream.
func (d *Device) DefaultStream() *Stream { return d.def }

// Streams returns all live streams, including the default stream.
func (d *Device) Streams() []*Stream {
	out := make([]*Stream, 0, len(d.streams))
	for _, s := range d.streams {
		if !s.destroyed {
			out = append(out, s)
		}
	}
	return out
}

func (d *Device) checkStream(s *Stream) (*Stream, error) {
	if s == nil {
		return d.def, nil
	}
	if s.dev != d {
		return nil, fmt.Errorf("%w: stream belongs to another device", ErrInvalidHandle)
	}
	if s.destroyed {
		return nil, fmt.Errorf("%w: stream %d destroyed", ErrInvalidHandle, s.id)
	}
	if !s.IsDefault() {
		if f := d.cfg.Inject.Fire(faults.CudaStreamHandle); f != nil {
			return nil, fmt.Errorf("%w: stream %d (%w)", ErrInvalidHandle, s.id, f)
		}
	}
	return s, nil
}

func (d *Device) checkEvent(e *Event) error {
	if e == nil || e.dev != d {
		return fmt.Errorf("%w: bad event", ErrInvalidHandle)
	}
	if e.destroyed {
		return fmt.Errorf("%w: event %d destroyed", ErrInvalidHandle, e.id)
	}
	if f := d.cfg.Inject.Fire(faults.CudaEventHandle); f != nil {
		return fmt.Errorf("%w: event %d (%w)", ErrInvalidHandle, e.id, f)
	}
	return nil
}

// StreamCreate creates a user stream (cudaStreamCreate). nonBlocking
// corresponds to cudaStreamNonBlocking: the stream is exempt from legacy
// default-stream barriers (paper §III-A).
func (d *Device) StreamCreate(nonBlocking bool) *Stream {
	s := &Stream{id: len(d.streams), nonBlocking: nonBlocking, dev: d}
	d.streams = append(d.streams, s)
	d.hooks.StreamCreated(s)
	return s
}

// StreamDestroy destroys a user stream.
func (d *Device) StreamDestroy(s *Stream) error {
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	if ss.IsDefault() {
		return fmt.Errorf("%w: cannot destroy the default stream", ErrInvalidValue)
	}
	if d.cfg.AsyncStreams {
		d.drainStream(ss)
	}
	d.hooks.StreamDestroyed(ss)
	ss.destroyed = true
	return nil
}

// EventCreate creates an event (cudaEventCreate).
func (d *Device) EventCreate() *Event {
	e := &Event{id: len(d.events), dev: d}
	d.events = append(d.events, e)
	d.hooks.EventCreated(e)
	return e
}

// EventDestroy destroys an event.
func (d *Device) EventDestroy(e *Event) error {
	if err := d.checkEvent(e); err != nil {
		return err
	}
	d.hooks.EventDestroyed(e)
	e.destroyed = true
	return nil
}

// EventRecord captures the current position of stream s in the event
// (cudaEventRecord).
func (d *Device) EventRecord(e *Event, s *Stream) error {
	if err := d.checkEvent(e); err != nil {
		return err
	}
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	d.hooks.PreEventRecord(e, ss)
	e.recorded = true
	e.stream = ss
	if d.cfg.AsyncStreams {
		d.asyncEventRecord(e, ss)
	}
	return nil
}

// EventSynchronize blocks the host until the event occurred
// (cudaEventSynchronize). Synchronizing an unrecorded event succeeds
// immediately, as in CUDA.
func (d *Device) EventSynchronize(e *Event) error {
	if err := d.checkEvent(e); err != nil {
		return err
	}
	d.hooks.PreEventSynchronize(e)
	if d.cfg.AsyncStreams && e.asyncDone != nil {
		<-e.asyncDone
	}
	return nil
}

// EventQuery polls event completion (cudaEventQuery). With eager
// execution a recorded event is always complete; in async mode the
// marker may still be pending. The interception hook only fires on a
// successful query — an incomplete poll establishes no ordering.
func (d *Device) EventQuery(e *Event) (bool, error) {
	if err := d.checkEvent(e); err != nil {
		return false, err
	}
	done := true
	if d.cfg.AsyncStreams {
		done = d.asyncEventQuery(e)
	}
	if done {
		d.hooks.PreEventQuery(e)
	}
	return done, nil
}

// StreamWaitEvent makes future work on s wait for the event
// (cudaStreamWaitEvent).
func (d *Device) StreamWaitEvent(s *Stream, e *Event) error {
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	if err := d.checkEvent(e); err != nil {
		return err
	}
	d.hooks.PreStreamWaitEvent(ss, e)
	if d.cfg.AsyncStreams {
		d.asyncStreamWaitEvent(ss, e)
	}
	return nil
}

// StreamSynchronize blocks the host until all commands on s completed
// (cudaStreamSynchronize).
func (d *Device) StreamSynchronize(s *Stream) error {
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	d.hooks.PreStreamSynchronize(ss)
	if d.cfg.AsyncStreams {
		d.drainStream(ss)
		return d.AsyncError()
	}
	return nil
}

// StreamQuery polls stream completion (cudaStreamQuery). Because this
// can be used as a busy-wait, tools must treat a successful query as a
// synchronization point (paper §III-B1).
func (d *Device) StreamQuery(s *Stream) (bool, error) {
	ss, err := d.checkStream(s)
	if err != nil {
		return false, err
	}
	done := true
	if d.cfg.AsyncStreams {
		done = d.asyncStreamQuery(ss)
	}
	if done {
		d.hooks.PreStreamQuery(ss)
	}
	return done, nil
}

// DeviceSynchronize blocks the host until all streams completed
// (cudaDeviceSynchronize).
func (d *Device) DeviceSynchronize() {
	d.hooks.PreDeviceSynchronize()
	if d.cfg.AsyncStreams {
		d.drainAll()
	}
}

// PointerGetAttributes reports the UVA memory kind of a pointer
// (cuPointerGetAttribute analog, paper §III-D).
func (d *Device) PointerGetAttributes(a memspace.Addr) memspace.Kind {
	return memspace.KindOf(a)
}
