package cuda

import (
	"fmt"

	"cusango/internal/faults"
	"cusango/internal/memspace"
)

// Memory management and memory operations, with the implicit
// synchronization semantics of paper §III-B2/§III-C encoded in the
// semantics table (semantics.go).

// Malloc allocates device memory (cudaMalloc).
func (d *Device) Malloc(bytes int64) (memspace.Addr, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: negative size", ErrInvalidValue)
	}
	if f := d.cfg.Inject.Fire(faults.CudaMalloc); f != nil {
		return 0, fmt.Errorf("%w: %d bytes (%w)", ErrMemoryAllocation, bytes, f)
	}
	a := d.mem.Alloc(bytes, memspace.KindDevice)
	d.hooks.AllocDone(a, bytes, memspace.KindDevice)
	return a, nil
}

// HostAlloc allocates pinned (page-locked) host memory (cudaHostAlloc).
func (d *Device) HostAlloc(bytes int64) (memspace.Addr, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: negative size", ErrInvalidValue)
	}
	if f := d.cfg.Inject.Fire(faults.CudaMalloc); f != nil {
		return 0, fmt.Errorf("%w: %d bytes (%w)", ErrMemoryAllocation, bytes, f)
	}
	a := d.mem.Alloc(bytes, memspace.KindHostPinned)
	d.hooks.AllocDone(a, bytes, memspace.KindHostPinned)
	return a, nil
}

// MallocManaged allocates CUDA-managed memory (cudaMallocManaged),
// accessible from both host and device but requiring explicit
// synchronization for a consistent view (paper §III-C).
func (d *Device) MallocManaged(bytes int64) (memspace.Addr, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("%w: negative size", ErrInvalidValue)
	}
	if f := d.cfg.Inject.Fire(faults.CudaMalloc); f != nil {
		return 0, fmt.Errorf("%w: %d bytes (%w)", ErrMemoryAllocation, bytes, f)
	}
	a := d.mem.Alloc(bytes, memspace.KindManaged)
	d.hooks.AllocDone(a, bytes, memspace.KindManaged)
	return a, nil
}

// Free releases device or managed memory (cudaFree). It synchronizes the
// host with all streams (paper §III-B2 / CUDA C guide App. F).
func (d *Device) Free(a memspace.Addr) error {
	k := memspace.KindOf(a)
	if k != memspace.KindDevice && k != memspace.KindManaged {
		return fmt.Errorf("%w: Free of %v pointer 0x%x", ErrInvalidPointer, k, uint64(a))
	}
	d.hooks.PreFree(a, k, true)
	if d.cfg.AsyncStreams {
		d.drainAll()
	}
	return d.mem.Free(a)
}

// FreeAsync releases device memory with stream ordering and no host
// synchronization (cudaFreeAsync).
func (d *Device) FreeAsync(a memspace.Addr, s *Stream) error {
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	k := memspace.KindOf(a)
	if k != memspace.KindDevice && k != memspace.KindManaged {
		return fmt.Errorf("%w: FreeAsync of %v pointer 0x%x", ErrInvalidPointer, k, uint64(a))
	}
	d.hooks.PreFree(a, k, false)
	if d.cfg.AsyncStreams {
		// Stream-ordered free: drain the ordering stream before the
		// host-side release (memory safety of the simulated table).
		d.drainStream(ss)
	}
	return d.mem.Free(a)
}

// FreeHost releases pinned host memory (cudaFreeHost).
func (d *Device) FreeHost(a memspace.Addr) error {
	if memspace.KindOf(a) != memspace.KindHostPinned {
		return fmt.Errorf("%w: FreeHost of %v pointer 0x%x", ErrInvalidPointer, memspace.KindOf(a), uint64(a))
	}
	d.hooks.PreFree(a, memspace.KindHostPinned, false)
	if d.cfg.AsyncStreams {
		d.drainAll()
	}
	return d.mem.Free(a)
}

// Memcpy copies n bytes between any UVA locations (cudaMemcpy with
// cudaMemcpyDefault direction inference). Synchronization behaviour
// depends on the source and destination kinds; see MemcpySyncsHost.
func (d *Device) Memcpy(dst, src memspace.Addr, n int64) error {
	return d.memcpy(dst, src, n, false, nil)
}

// MemcpyAsync is the asynchronous variant on a stream (cudaMemcpyAsync).
func (d *Device) MemcpyAsync(dst, src memspace.Addr, n int64, s *Stream) error {
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	return d.memcpy(dst, src, n, true, ss)
}

func (d *Device) memcpy(dst, src memspace.Addr, n int64, async bool, s *Stream) error {
	if n < 0 {
		return fmt.Errorf("%w: negative memcpy size", ErrInvalidValue)
	}
	dk, sk := memspace.KindOf(dst), memspace.KindOf(src)
	if dk == memspace.KindInvalid || sk == memspace.KindInvalid {
		return fmt.Errorf("%w: memcpy 0x%x <- 0x%x", ErrInvalidPointer, uint64(dst), uint64(src))
	}
	if s == nil {
		s = d.def
	}
	op := &MemOp{
		Dst: dst, Src: src, Bytes: n,
		DstKind: dk, SrcKind: sk,
		Async: async, Stream: s,
		SyncsHost: MemcpySyncsHost(dk, sk, async),
	}
	d.hooks.PreMemcpy(op)
	if d.cfg.AsyncStreams {
		return d.asyncCopy(op)
	}
	return d.mem.Copy(dst, src, n)
}

// Memset fills n bytes at a with v (cudaMemset). Synchronization depends
// on the memory kind: pinned host memory synchronizes with the host,
// device memory generally does not (paper §III-C).
func (d *Device) Memset(a memspace.Addr, v byte, n int64) error {
	return d.memset(a, v, n, false, nil)
}

// MemsetAsync is the asynchronous variant on a stream (cudaMemsetAsync).
func (d *Device) MemsetAsync(a memspace.Addr, v byte, n int64, s *Stream) error {
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	return d.memset(a, v, n, true, ss)
}

func (d *Device) memset(a memspace.Addr, v byte, n int64, async bool, s *Stream) error {
	if n < 0 {
		return fmt.Errorf("%w: negative memset size", ErrInvalidValue)
	}
	k := memspace.KindOf(a)
	if k == memspace.KindInvalid {
		return fmt.Errorf("%w: memset at 0x%x", ErrInvalidPointer, uint64(a))
	}
	if s == nil {
		s = d.def
	}
	op := &MemOp{
		Dst: a, Bytes: n,
		DstKind: k, SrcKind: memspace.KindInvalid,
		Async: async, Stream: s,
		SyncsHost: MemsetSyncsHost(k, async),
	}
	d.hooks.PreMemset(op)
	if d.cfg.AsyncStreams {
		return d.asyncSet(op, v)
	}
	return d.mem.Set(a, v, n)
}
