package cuda

import (
	"runtime"

	"cusango/internal/faults"
	"cusango/internal/kinterp"
	"cusango/internal/memspace"
)

// Asynchronous device execution.
//
// The default execution mode is eager (operations run at enqueue time;
// concurrency is modeled logically by the tooling). With
// Config.AsyncStreams, streams become what they are on real hardware:
// FIFO queues drained by executor goroutines, so kernel launches and
// async memory operations genuinely overlap host execution, explicit
// synchronization genuinely blocks, and a missing synchronization is not
// only *detected* by the tooling but can manifest as real nondeterminism.
//
// Ordering model: every enqueued operation carries prerequisite
// channels. FIFO order within a stream comes from the queue itself;
// legacy default-stream barriers (paper Fig. 3) and cudaStreamWaitEvent
// become prerequisites on the producing streams' tails / the event's
// completion channel. The correctness tooling is entirely unaffected:
// hooks fire on the host at enqueue time in both modes, which is where
// the real CuSan intercepts its callbacks.
//
// Memory-safety contract: views of the address space are snapshotted on
// the host at enqueue time; Free and FreeAsync drain the device before
// releasing memory, so device work never observes a torn segment table.

type asyncOp struct {
	prereqs []<-chan struct{}
	run     func()
	done    chan struct{}
	// yields delays execution by a deterministic number of logical
	// yields (fault injection). FIFO order and prerequisites are
	// unaffected — only completion order relative to unordered work
	// shifts, which the documented semantics allow. Logical delay keeps
	// jittered runs independent of wall-clock speed (a real sleep made
	// the perturbation vanish or dominate depending on machine load).
	yields int
}

type streamExec struct {
	ops chan *asyncOp
	// tail is the completion channel of the most recently enqueued op
	// (closed channel when idle). Only the host goroutine touches it.
	tail <-chan struct{}
}

var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

func newStreamExec(yield func(n int)) *streamExec {
	se := &streamExec{ops: make(chan *asyncOp, 64), tail: closedChan}
	go func() {
		for op := range se.ops {
			for _, p := range op.prereqs {
				<-p
			}
			if op.yields > 0 {
				yield(op.yields)
			}
			if op.run != nil {
				op.run()
			}
			close(op.done)
		}
	}()
	return se
}

// exec returns (creating on demand) the executor of stream s.
func (d *Device) exec(s *Stream) *streamExec {
	se, ok := d.execs[s.id]
	if !ok {
		se = newStreamExec(d.yield)
		d.execs[s.id] = se
	}
	return se
}

// yield performs n logical delay steps (Config.Yield, defaulting to
// goroutine reschedules).
func (d *Device) yield(n int) {
	if d.cfg.Yield != nil {
		d.cfg.Yield(n)
		return
	}
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// barrierPrereqs returns the cross-stream prerequisites of an operation
// enqueued on s under legacy default-stream semantics.
func (d *Device) barrierPrereqs(s *Stream) []<-chan struct{} {
	if s.nonBlocking {
		return nil
	}
	var pre []<-chan struct{}
	if s.IsDefault() {
		for id, se := range d.execs {
			st := d.streams[id]
			if id != 0 && !st.destroyed && !st.nonBlocking {
				pre = append(pre, se.tail)
			}
		}
	} else if se, ok := d.execs[0]; ok {
		pre = append(pre, se.tail)
	}
	return pre
}

// enqueue schedules run on stream s with legacy barriers plus extra
// prerequisites, returning the op's completion channel.
func (d *Device) enqueue(s *Stream, run func(), extra ...<-chan struct{}) <-chan struct{} {
	se := d.exec(s)
	op := &asyncOp{
		prereqs: append(d.barrierPrereqs(s), extra...),
		run:     run,
		done:    make(chan struct{}),
	}
	// The jitter decision is made here on the host goroutine, where
	// enqueue order (and thus occurrence numbering) is deterministic.
	if f := d.cfg.Inject.Fire(faults.CudaAsyncJitter); f != nil {
		op.yields = int(f.Occurrence%7 + 1)
	}
	se.tail = op.done
	se.ops <- op
	return op.done
}

// drainStream blocks until all currently enqueued work on s completed.
func (d *Device) drainStream(s *Stream) {
	if se, ok := d.execs[s.id]; ok {
		<-se.tail
	}
}

// drainAll blocks until every stream is idle.
func (d *Device) drainAll() {
	for _, se := range d.execs {
		<-se.tail
	}
}

// Close shuts down the device's executor goroutines after draining all
// in-flight work. Further async enqueues panic; eager-mode devices are
// unaffected. The toolchain closes devices when the job ends.
func (d *Device) Close() {
	if !d.cfg.AsyncStreams {
		return
	}
	d.drainAll()
	for _, se := range d.execs {
		close(se.ops)
	}
	d.execs = make(map[int]*streamExec)
}

// --- async-mode operation bodies ------------------------------------------

// asyncLaunch enqueues the kernel execution.
func (d *Device) asyncLaunch(name string, grid, block kinterp.Dim3, args []kinterp.Arg, s *Stream) error {
	view := d.mem.NewView()
	errCh := make(chan error, 1)
	d.enqueue(s, func() {
		errCh <- d.eng.LaunchView(name, grid, block, args, view)
	})
	// Launch errors surface at the next synchronization point, like
	// asynchronous CUDA errors; we keep the last one.
	go func() {
		if err := <-errCh; err != nil {
			d.asyncErrMu.Lock()
			d.asyncErr = err
			d.asyncErrMu.Unlock()
		}
	}()
	return nil
}

// AsyncError returns and clears the sticky asynchronous execution error
// (the cudaGetLastError analog for async mode).
func (d *Device) AsyncError() error {
	d.asyncErrMu.Lock()
	defer d.asyncErrMu.Unlock()
	err := d.asyncErr
	d.asyncErr = nil
	return err
}

// asyncCopy enqueues a memcpy; if the semantics say the call is
// host-synchronous, it blocks until done.
func (d *Device) asyncCopy(op *MemOp) error {
	view := d.mem.NewView()
	errCh := make(chan error, 1)
	done := d.enqueue(op.Stream, func() {
		errCh <- viewCopy(view, op.Dst, op.Src, op.Bytes)
	})
	if op.SyncsHost {
		<-done
		return <-errCh
	}
	go func() {
		if err := <-errCh; err != nil {
			d.asyncErrMu.Lock()
			d.asyncErr = err
			d.asyncErrMu.Unlock()
		}
	}()
	return nil
}

func viewCopy(v *memspace.View, dst, src memspace.Addr, n int64) error {
	db, err := v.Bytes(dst, n)
	if err != nil {
		return err
	}
	sb, err := v.Bytes(src, n)
	if err != nil {
		return err
	}
	copy(db, sb)
	return nil
}

// asyncSet enqueues a memset with the same host-sync contract.
func (d *Device) asyncSet(op *MemOp, val byte) error {
	view := d.mem.NewView()
	errCh := make(chan error, 1)
	done := d.enqueue(op.Stream, func() {
		b, err := view.Bytes(op.Dst, op.Bytes)
		if err == nil {
			for i := range b {
				b[i] = val
			}
		}
		errCh <- err
	})
	if op.SyncsHost {
		<-done
		return <-errCh
	}
	go func() {
		if err := <-errCh; err != nil {
			d.asyncErrMu.Lock()
			d.asyncErr = err
			d.asyncErrMu.Unlock()
		}
	}()
	return nil
}

// asyncEventRecord enqueues a marker whose completion the event adopts.
func (d *Device) asyncEventRecord(e *Event, s *Stream) {
	e.asyncDone = d.enqueue(s, nil)
}

// asyncStreamWaitEvent makes future work on s wait for the event.
func (d *Device) asyncStreamWaitEvent(s *Stream, e *Event) {
	if e.asyncDone == nil {
		return // unrecorded event: no-op, as in CUDA
	}
	d.enqueue(s, nil, e.asyncDone)
}

// asyncEventQuery reports event completion without blocking.
func (d *Device) asyncEventQuery(e *Event) bool {
	if e.asyncDone == nil {
		return true
	}
	select {
	case <-e.asyncDone:
		return true
	default:
		return false
	}
}

// asyncStreamQuery reports stream completion without blocking.
func (d *Device) asyncStreamQuery(s *Stream) bool {
	se, ok := d.execs[s.id]
	if !ok {
		return true
	}
	select {
	case <-se.tail:
		return true
	default:
		return false
	}
}
