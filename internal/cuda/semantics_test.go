package cuda

import (
	"testing"

	"cusango/internal/memspace"
)

// TestMemcpySemanticsTable pins the full synchronization-semantics table
// for cudaMemcpy (paper §III-B2) — the "manually verified set" of
// behaviours CuSan depends on (paper §VI-A).
func TestMemcpySemanticsTable(t *testing.T) {
	P, N, D, M := memspace.KindHostPageable, memspace.KindHostPinned,
		memspace.KindDevice, memspace.KindManaged
	cases := []struct {
		dst, src memspace.Kind
		async    bool
		want     bool
	}{
		// Synchronous variant.
		{D, P, false, true},  // H2D pageable: staged, sync
		{D, N, false, true},  // H2D pinned: sync once copy completes
		{P, D, false, true},  // D2H: sync
		{N, D, false, true},  // D2H pinned: sync
		{P, P, false, true},  // H2H: sync
		{D, D, false, false}, // D2D: no host synchronization
		{M, D, false, false}, // managed treated as device side
		{D, M, false, false},
		{M, M, false, false},
		// Async variant: pessimistically never host-syncing.
		{D, P, true, false},
		{P, D, true, false},
		{D, D, true, false},
		{N, D, true, false},
	}
	for _, c := range cases {
		if got := MemcpySyncsHost(c.dst, c.src, c.async); got != c.want {
			t.Errorf("MemcpySyncsHost(%v<-%v, async=%v) = %v, want %v",
				c.dst, c.src, c.async, got, c.want)
		}
	}
}

func TestMemsetSemanticsTable(t *testing.T) {
	cases := []struct {
		k     memspace.Kind
		async bool
		want  bool
	}{
		{memspace.KindDevice, false, false},    // device: async w.r.t. host
		{memspace.KindManaged, false, false},   // managed: async
		{memspace.KindHostPinned, false, true}, // pinned: synchronizes (paper §III-C)
		{memspace.KindHostPageable, false, false},
		{memspace.KindHostPinned, true, false}, // async variant never syncs
		{memspace.KindDevice, true, false},
	}
	for _, c := range cases {
		if got := MemsetSyncsHost(c.k, c.async); got != c.want {
			t.Errorf("MemsetSyncsHost(%v, async=%v) = %v, want %v", c.k, c.async, got, c.want)
		}
	}
}

func TestFreeSemantics(t *testing.T) {
	if !FreeSyncsHost(false) {
		t.Error("cudaFree must synchronize the host")
	}
	if FreeSyncsHost(true) {
		t.Error("cudaFreeAsync must not synchronize the host")
	}
}
