package cuda

import (
	"testing"
	"time"

	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
	"cusango/internal/raceflag"
)

// asyncModule has a kernel whose native implementation can be throttled
// so tests can observe genuine overlap.
func asyncModule() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("fill7", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("buf"), i, e.ConstF(7))
		})
	}))
	return m
}

func newAsyncDev(t *testing.T) (*Device, *memspace.Memory) {
	t.Helper()
	mem := memspace.New()
	d, err := NewDevice(mem, asyncModule(), Config{AsyncStreams: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, mem
}

// slowFill registers a native kernel that sleeps before filling, so the
// host provably runs ahead of the device.
func slowFill(started chan<- struct{}, delay time.Duration) kinterp.ThreadRange {
	return func(g kinterp.Geometry, lo, hi int, args []kinterp.Arg, view *memspace.View) error {
		if started != nil {
			select {
			case started <- struct{}{}:
			default:
			}
		}
		time.Sleep(delay)
		n := args[1].I
		buf, err := kinterp.NewVecF64(view, args[0].Ptr, n)
		if err != nil {
			return err
		}
		for lin := lo; lin < hi; lin++ {
			gx, _ := g.Thread(lin)
			if int64(gx) < n {
				buf.Set(int64(gx), 7)
			}
		}
		return nil
	}
}

func TestAsyncLaunchReturnsBeforeCompletion(t *testing.T) {
	d, mem := newAsyncDev(t)
	if err := d.RegisterNative("fill7", slowFill(nil, 30*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf, _ := d.Malloc(8 * 8)
	start := time.Now()
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(8),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(8)}, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("launch blocked for %v; async launches must return immediately", elapsed)
	}
	// Before synchronization the buffer may still be zero; after
	// DeviceSynchronize it must be filled.
	d.DeviceSynchronize()
	if got := mem.Float64(buf); got != 7 {
		t.Fatalf("after deviceSync buf[0] = %v", got)
	}
}

func TestAsyncStreamSynchronizeBlocksUntilDone(t *testing.T) {
	d, mem := newAsyncDev(t)
	if err := d.RegisterNative("fill7", slowFill(nil, 20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s := d.StreamCreate(true)
	buf, _ := d.Malloc(8 * 8)
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(8),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(8)}, s); err != nil {
		t.Fatal(err)
	}
	if err := d.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	if got := mem.Float64(buf + 56); got != 7 {
		t.Fatalf("after streamSync buf[7] = %v", got)
	}
}

func TestAsyncStreamQueryReflectsProgress(t *testing.T) {
	d, _ := newAsyncDev(t)
	started := make(chan struct{}, 1)
	if err := d.RegisterNative("fill7", slowFill(started, 40*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s := d.StreamCreate(true)
	buf, _ := d.Malloc(8)
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(1),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(1)}, s); err != nil {
		t.Fatal(err)
	}
	<-started // kernel is provably running
	done, err := d.StreamQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("query reported completion while the kernel sleeps")
	}
	if err := d.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	done, err = d.StreamQuery(s)
	if err != nil || !done {
		t.Fatalf("query after sync: done=%v err=%v", done, err)
	}
}

func TestAsyncEventOrdering(t *testing.T) {
	d, mem := newAsyncDev(t)
	if err := d.RegisterNative("fill7", slowFill(nil, 15*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s1 := d.StreamCreate(true)
	s2 := d.StreamCreate(true)
	buf, _ := d.Malloc(8 * 8)
	out := mem.Alloc(8*8, memspace.KindHostPageable)
	ev := d.EventCreate()
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(8),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(8)}, s1); err != nil {
		t.Fatal(err)
	}
	if err := d.EventRecord(ev, s1); err != nil {
		t.Fatal(err)
	}
	if err := d.StreamWaitEvent(s2, ev); err != nil {
		t.Fatal(err)
	}
	// The copy on s2 must observe the fill from s1 thanks to the event.
	if err := d.MemcpyAsync(out, buf, 64, s2); err != nil {
		t.Fatal(err)
	}
	if err := d.StreamSynchronize(s2); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if got := mem.Float64(out + memspace.Addr(i*8)); got != 7 {
			t.Fatalf("out[%d] = %v; streamWaitEvent did not order", i, got)
		}
	}
}

func TestAsyncEventSynchronize(t *testing.T) {
	d, mem := newAsyncDev(t)
	if err := d.RegisterNative("fill7", slowFill(nil, 15*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s := d.StreamCreate(true)
	buf, _ := d.Malloc(8)
	ev := d.EventCreate()
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(1),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(1)}, s); err != nil {
		t.Fatal(err)
	}
	if err := d.EventRecord(ev, s); err != nil {
		t.Fatal(err)
	}
	if err := d.EventSynchronize(ev); err != nil {
		t.Fatal(err)
	}
	if got := mem.Float64(buf); got != 7 {
		t.Fatalf("after eventSync buf = %v", got)
	}
}

func TestAsyncLegacyDefaultStreamBarrier(t *testing.T) {
	// A default-stream memcpy must wait for prior work on a BLOCKING
	// user stream (paper Fig. 3), even in async mode.
	d, mem := newAsyncDev(t)
	if err := d.RegisterNative("fill7", slowFill(nil, 15*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	bs := d.StreamCreate(false) // blocking
	buf, _ := d.Malloc(8 * 8)
	out := mem.Alloc(8*8, memspace.KindHostPageable)
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(8),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(8)}, bs); err != nil {
		t.Fatal(err)
	}
	// Synchronous D2H memcpy on the default stream: blocks the host AND
	// waits for the blocking stream's kernel.
	if err := d.Memcpy(out, buf, 64); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if got := mem.Float64(out + memspace.Addr(i*8)); got != 7 {
			t.Fatalf("out[%d] = %v; legacy barrier not enforced", i, got)
		}
	}
}

func TestAsyncNonBlockingStreamSkipsBarrier(t *testing.T) {
	// A default-stream op does NOT wait for a non-blocking stream: the
	// copy may see stale zeros. We only check that it completes and that
	// a later sync sees the fill (no hang, no corruption).
	if raceflag.Enabled {
		t.Skip("deliberately racy program on the async executor")
	}
	d, mem := newAsyncDev(t)
	if err := d.RegisterNative("fill7", slowFill(nil, 25*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	nb := d.StreamCreate(true)
	buf, _ := d.Malloc(8)
	out := mem.Alloc(8, memspace.KindHostPageable)
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(1),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(1)}, nb); err != nil {
		t.Fatal(err)
	}
	if err := d.Memcpy(out, buf, 8); err != nil {
		t.Fatal(err)
	}
	d.DeviceSynchronize()
	if got := mem.Float64(buf); got != 7 {
		t.Fatalf("kernel result lost: %v", got)
	}
}

func TestAsyncErrorSurfacesAtSync(t *testing.T) {
	d, _ := newAsyncDev(t)
	buf, _ := d.Malloc(8)
	// n=100 over a 1-element buffer: device-side OOB, interpreted mode.
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(128),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(100)}, nil); err != nil {
		t.Fatal(err)
	}
	d.DeviceSynchronize()
	// The sticky error must be observable (launch itself returned nil).
	deadline := time.After(time.Second)
	for {
		if err := d.AsyncError(); err != nil {
			return
		}
		select {
		case <-deadline:
			t.Fatal("async launch error never surfaced")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestAsyncFreeDrains(t *testing.T) {
	d, mem := newAsyncDev(t)
	if err := d.RegisterNative("fill7", slowFill(nil, 15*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf, _ := d.Malloc(8)
	other, _ := d.Malloc(8)
	if err := d.LaunchKernel("fill7", kinterp.Dim(1), kinterp.Dim(1),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(1)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(other); err != nil { // device-wide sync
		t.Fatal(err)
	}
	if got := mem.Float64(buf); got != 7 {
		t.Fatalf("Free did not synchronize: buf = %v", got)
	}
}

func TestAsyncCloseIdempotentAndEagerNoop(t *testing.T) {
	d, _ := newAsyncDev(t)
	d.Close()
	d.Close() // second close must not panic
	eager, _ := newDev(t, nil)
	eager.Close() // eager-mode no-op
}
