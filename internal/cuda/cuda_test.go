package cuda

import (
	"errors"
	"fmt"
	"testing"

	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
)

// recordingHooks logs every callback for sequence assertions.
type recordingHooks struct {
	BaseHooks
	log []string
}

func (h *recordingHooks) AllocDone(a memspace.Addr, n int64, k memspace.Kind) {
	h.log = append(h.log, fmt.Sprintf("alloc:%v:%d", k, n))
}
func (h *recordingHooks) PreFree(a memspace.Addr, k memspace.Kind, sync bool) {
	h.log = append(h.log, fmt.Sprintf("free:%v:sync=%v", k, sync))
}
func (h *recordingHooks) StreamCreated(s *Stream) {
	h.log = append(h.log, fmt.Sprintf("streamCreate:%d:nb=%v", s.ID(), s.NonBlocking()))
}
func (h *recordingHooks) StreamDestroyed(s *Stream) {
	h.log = append(h.log, fmt.Sprintf("streamDestroy:%d", s.ID()))
}
func (h *recordingHooks) PreEventRecord(e *Event, s *Stream) {
	h.log = append(h.log, fmt.Sprintf("eventRecord:%d:on=%d", e.ID(), s.ID()))
}
func (h *recordingHooks) PreEventSynchronize(e *Event) {
	h.log = append(h.log, fmt.Sprintf("eventSync:%d", e.ID()))
}
func (h *recordingHooks) PreStreamWaitEvent(s *Stream, e *Event) {
	h.log = append(h.log, fmt.Sprintf("streamWaitEvent:%d:%d", s.ID(), e.ID()))
}
func (h *recordingHooks) PreStreamSynchronize(s *Stream) {
	h.log = append(h.log, fmt.Sprintf("streamSync:%d", s.ID()))
}
func (h *recordingHooks) PreStreamQuery(s *Stream) {
	h.log = append(h.log, fmt.Sprintf("streamQuery:%d", s.ID()))
}
func (h *recordingHooks) PreDeviceSynchronize() {
	h.log = append(h.log, "deviceSync")
}
func (h *recordingHooks) PreKernelLaunch(l *KernelLaunch) {
	h.log = append(h.log, fmt.Sprintf("launch:%s:on=%d", l.Name, l.Stream.ID()))
}
func (h *recordingHooks) PreMemcpy(op *MemOp) {
	h.log = append(h.log, fmt.Sprintf("memcpy:%d:sync=%v", op.Bytes, op.SyncsHost))
}
func (h *recordingHooks) PreMemset(op *MemOp) {
	h.log = append(h.log, fmt.Sprintf("memset:%d:sync=%v", op.Bytes, op.SyncsHost))
}

func scaleModule() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("scale", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
		{Name: "f", Type: kir.TFloat},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			p := e.GEP(e.Arg("buf"), i)
			e.Store(p, e.Mul(e.Load(p), e.Arg("f")))
		})
	}))
	return m
}

func newDev(t *testing.T, hooks Hooks) (*Device, *memspace.Memory) {
	t.Helper()
	mem := memspace.New()
	d, err := NewDevice(mem, scaleModule(), Config{}, hooks)
	if err != nil {
		t.Fatalf("NewDevice: %v", err)
	}
	return d, mem
}

func TestMallocKinds(t *testing.T) {
	d, _ := newDev(t, nil)
	dp, err := d.Malloc(64)
	if err != nil || memspace.KindOf(dp) != memspace.KindDevice {
		t.Fatalf("Malloc: %v kind %v", err, memspace.KindOf(dp))
	}
	hp, err := d.HostAlloc(64)
	if err != nil || memspace.KindOf(hp) != memspace.KindHostPinned {
		t.Fatalf("HostAlloc: %v kind %v", err, memspace.KindOf(hp))
	}
	mp, err := d.MallocManaged(64)
	if err != nil || memspace.KindOf(mp) != memspace.KindManaged {
		t.Fatalf("MallocManaged: %v kind %v", err, memspace.KindOf(mp))
	}
	if _, err := d.Malloc(-1); !errors.Is(err, ErrInvalidValue) {
		t.Fatal("negative malloc must fail")
	}
}

func TestFreeKindChecks(t *testing.T) {
	d, mem := newDev(t, nil)
	dp, _ := d.Malloc(64)
	hp, _ := d.HostAlloc(64)
	pageable := mem.Alloc(64, memspace.KindHostPageable)

	if err := d.Free(hp); !errors.Is(err, ErrInvalidPointer) {
		t.Error("Free(pinned) must fail")
	}
	if err := d.FreeHost(dp); !errors.Is(err, ErrInvalidPointer) {
		t.Error("FreeHost(device) must fail")
	}
	if err := d.Free(pageable); !errors.Is(err, ErrInvalidPointer) {
		t.Error("Free(pageable) must fail")
	}
	if err := d.Free(dp); err != nil {
		t.Errorf("Free(device): %v", err)
	}
	if err := d.FreeHost(hp); err != nil {
		t.Errorf("FreeHost(pinned): %v", err)
	}
}

func TestFreeSyncSemanticsReachHooks(t *testing.T) {
	h := &recordingHooks{}
	d, _ := newDev(t, h)
	dp, _ := d.Malloc(8)
	_ = d.Free(dp)
	dp2, _ := d.Malloc(8)
	_ = d.FreeAsync(dp2, nil)
	want := []string{"alloc:device:8", "free:device:sync=true", "alloc:device:8", "free:device:sync=false"}
	for i, w := range want {
		if h.log[i] != w {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, h.log[i], w, h.log)
		}
	}
}

func TestStreamLifecycle(t *testing.T) {
	d, _ := newDev(t, nil)
	s := d.StreamCreate(false)
	if s.ID() == 0 || s.IsDefault() {
		t.Fatal("user stream must not be default")
	}
	nb := d.StreamCreate(true)
	if !nb.NonBlocking() {
		t.Fatal("non-blocking flag lost")
	}
	if got := len(d.Streams()); got != 3 {
		t.Fatalf("streams = %d, want 3 (default + 2)", got)
	}
	if err := d.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
	if err := d.StreamSynchronize(s); !errors.Is(err, ErrInvalidHandle) {
		t.Fatal("sync on destroyed stream must fail")
	}
	if err := d.StreamDestroy(d.DefaultStream()); !errors.Is(err, ErrInvalidValue) {
		t.Fatal("destroying default stream must fail")
	}
	if got := len(d.Streams()); got != 2 {
		t.Fatalf("streams after destroy = %d", got)
	}
}

func TestStreamFromOtherDeviceRejected(t *testing.T) {
	d1, _ := newDev(t, nil)
	d2, _ := newDev(t, nil)
	s := d1.StreamCreate(false)
	if err := d2.StreamSynchronize(s); !errors.Is(err, ErrInvalidHandle) {
		t.Fatal("foreign stream must be rejected")
	}
}

func TestEventLifecycle(t *testing.T) {
	d, _ := newDev(t, nil)
	e := d.EventCreate()
	if e.Recorded() {
		t.Fatal("fresh event must not be recorded")
	}
	// Synchronizing an unrecorded event succeeds (CUDA semantics).
	if err := d.EventSynchronize(e); err != nil {
		t.Fatal(err)
	}
	s := d.StreamCreate(false)
	if err := d.EventRecord(e, s); err != nil {
		t.Fatal(err)
	}
	if !e.Recorded() || e.Stream() != s {
		t.Fatal("record did not capture stream")
	}
	done, err := d.EventQuery(e)
	if err != nil || !done {
		t.Fatal("eager event must be complete")
	}
	if err := d.EventDestroy(e); err != nil {
		t.Fatal(err)
	}
	if err := d.EventSynchronize(e); !errors.Is(err, ErrInvalidHandle) {
		t.Fatal("sync on destroyed event must fail")
	}
}

func TestMemcpyAcrossKindsMovesData(t *testing.T) {
	d, mem := newDev(t, nil)
	h := mem.Alloc(32, memspace.KindHostPageable)
	dev, _ := d.Malloc(32)
	back := mem.Alloc(32, memspace.KindHostPageable)
	for i := int64(0); i < 4; i++ {
		mem.SetFloat64(h+memspace.Addr(i*8), float64(i)+0.25)
	}
	if err := d.Memcpy(dev, h, 32); err != nil {
		t.Fatal(err)
	}
	if err := d.Memcpy(back, dev, 32); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if got := mem.Float64(back + memspace.Addr(i*8)); got != float64(i)+0.25 {
			t.Fatalf("roundtrip[%d] = %v", i, got)
		}
	}
}

func TestMemcpyInvalidPointer(t *testing.T) {
	d, _ := newDev(t, nil)
	dev, _ := d.Malloc(8)
	if err := d.Memcpy(dev, memspace.Addr(12345), 8); !errors.Is(err, ErrInvalidPointer) {
		t.Fatal("memcpy from junk address must fail")
	}
	if err := d.Memcpy(dev, dev, -1); !errors.Is(err, ErrInvalidValue) {
		t.Fatal("negative size must fail")
	}
}

func TestMemsetWritesBytes(t *testing.T) {
	d, mem := newDev(t, nil)
	dev, _ := d.Malloc(16)
	if err := d.Memset(dev, 0xCD, 16); err != nil {
		t.Fatal(err)
	}
	for i := memspace.Addr(0); i < 16; i++ {
		if mem.Byte(dev+i) != 0xCD {
			t.Fatalf("byte %d not set", i)
		}
	}
}

func TestLaunchExecutesKernel(t *testing.T) {
	d, mem := newDev(t, nil)
	buf, _ := d.Malloc(10 * 8)
	for i := int64(0); i < 10; i++ {
		mem.SetFloat64(buf+memspace.Addr(i*8), float64(i))
	}
	err := d.LaunchKernel("scale", kinterp.Dim(1), kinterp.Dim(16),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(10), kinterp.F64(2.0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if got := mem.Float64(buf + memspace.Addr(i*8)); got != float64(2*i) {
			t.Fatalf("buf[%d] = %v", i, got)
		}
	}
}

func TestLaunchRejectsPageablePointer(t *testing.T) {
	d, mem := newDev(t, nil)
	h := mem.Alloc(80, memspace.KindHostPageable)
	err := d.LaunchKernel("scale", kinterp.Dim(1), kinterp.Dim(16),
		[]kinterp.Arg{kinterp.Ptr(h), kinterp.Int(10), kinterp.F64(2.0)}, nil)
	if !errors.Is(err, ErrInvalidPointer) {
		t.Fatalf("err = %v, want invalid pointer", err)
	}
}

func TestLaunchAcceptsManagedAndPinned(t *testing.T) {
	d, _ := newDev(t, nil)
	for _, alloc := range []func(int64) (memspace.Addr, error){d.MallocManaged, d.HostAlloc} {
		p, _ := alloc(80)
		err := d.LaunchKernel("scale", kinterp.Dim(1), kinterp.Dim(16),
			[]kinterp.Arg{kinterp.Ptr(p), kinterp.Int(10), kinterp.F64(1.0)}, nil)
		if err != nil {
			t.Fatalf("launch with %v pointer: %v", memspace.KindOf(p), err)
		}
	}
}

func TestLaunchUnknownKernel(t *testing.T) {
	d, _ := newDev(t, nil)
	if err := d.LaunchKernel("nope", kinterp.Dim(1), kinterp.Dim(1), nil, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatal("unknown kernel must fail")
	}
}

func TestLaunchHookCarriesAccessAttributes(t *testing.T) {
	var got *KernelLaunch
	h := &struct {
		BaseHooks
	}{}
	_ = h
	d, _ := newDev(t, nil)
	d.SetHooks(hookFunc(func(l *KernelLaunch) { got = l }))
	buf, _ := d.Malloc(80)
	err := d.LaunchKernel("scale", kinterp.Dim(1), kinterp.Dim(16),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(10), kinterp.F64(3.0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("launch hook not called")
	}
	if len(got.Access) != 3 {
		t.Fatalf("access len = %d", len(got.Access))
	}
	// scale reads and writes buf in place.
	if !got.Access[0].MayRead() || !got.Access[0].MayWrite() {
		t.Fatalf("buf access = %v, want rw", got.Access[0])
	}
	if got.Params[0].Name != "buf" {
		t.Fatalf("param name = %q", got.Params[0].Name)
	}
}

// hookFunc adapts a kernel-launch func to Hooks.
type hookFunc func(*KernelLaunch)

func (hookFunc) AllocDone(memspace.Addr, int64, memspace.Kind) {}
func (hookFunc) PreFree(memspace.Addr, memspace.Kind, bool)    {}
func (hookFunc) StreamCreated(*Stream)                         {}
func (hookFunc) StreamDestroyed(*Stream)                       {}
func (hookFunc) EventCreated(*Event)                           {}
func (hookFunc) EventDestroyed(*Event)                         {}
func (hookFunc) PreEventRecord(*Event, *Stream)                {}
func (hookFunc) PreEventSynchronize(*Event)                    {}
func (hookFunc) PreEventQuery(*Event)                          {}
func (hookFunc) PreStreamWaitEvent(*Stream, *Event)            {}
func (hookFunc) PreStreamSynchronize(*Stream)                  {}
func (hookFunc) PreStreamQuery(*Stream)                        {}
func (hookFunc) PreDeviceSynchronize()                         {}
func (f hookFunc) PreKernelLaunch(l *KernelLaunch)             { f(l) }
func (hookFunc) PreMemcpy(*MemOp)                              {}
func (hookFunc) PreMemset(*MemOp)                              {}

func TestHookSequence(t *testing.T) {
	h := &recordingHooks{}
	d, _ := newDev(t, h)
	buf, _ := d.Malloc(80)
	s := d.StreamCreate(true)
	ev := d.EventCreate()
	_ = d.LaunchKernel("scale", kinterp.Dim(1), kinterp.Dim(16),
		[]kinterp.Arg{kinterp.Ptr(buf), kinterp.Int(10), kinterp.F64(2.0)}, s)
	_ = d.EventRecord(ev, s)
	_ = d.StreamWaitEvent(d.DefaultStream(), ev)
	_ = d.StreamSynchronize(s)
	d.DeviceSynchronize()
	want := []string{
		"alloc:device:80",
		"streamCreate:1:nb=true",
		fmt.Sprintf("launch:scale:on=%d", s.ID()),
		fmt.Sprintf("eventRecord:%d:on=%d", ev.ID(), s.ID()),
		fmt.Sprintf("streamWaitEvent:0:%d", ev.ID()),
		fmt.Sprintf("streamSync:%d", s.ID()),
		"deviceSync",
	}
	if len(h.log) != len(want) {
		t.Fatalf("log = %v", h.log)
	}
	for i, w := range want {
		if h.log[i] != w {
			t.Fatalf("log[%d] = %q, want %q", i, h.log[i], w)
		}
	}
}

func TestMemOpSyncFlagsReachHooks(t *testing.T) {
	h := &recordingHooks{}
	d, mem := newDev(t, h)
	dev, _ := d.Malloc(8)
	dev2, _ := d.Malloc(8)
	host := mem.Alloc(8, memspace.KindHostPageable)
	pinned, _ := d.HostAlloc(8)

	h.log = nil
	_ = d.Memcpy(dev, host, 8)           // H2D pageable: sync
	_ = d.Memcpy(dev2, dev, 8)           // D2D: not host-sync
	_ = d.MemcpyAsync(host, dev, 8, nil) // async: never sync
	_ = d.Memset(dev, 0, 8)              // device memset: not sync
	_ = d.Memset(pinned, 0, 8)           // pinned memset: sync
	want := []string{
		"memcpy:8:sync=true",
		"memcpy:8:sync=false",
		"memcpy:8:sync=false",
		"memset:8:sync=false",
		"memset:8:sync=true",
	}
	for i, w := range want {
		if h.log[i] != w {
			t.Fatalf("log[%d] = %q, want %q (full %v)", i, h.log[i], w, h.log)
		}
	}
}
