package cuda

// Detached handles for offline trace replay (internal/trace): they carry
// the identity the tool runtimes read (ids and creation flags) but belong
// to no device, so they must never be passed back into Device methods.

// NewStreamHandle returns a detached stream handle with the given id and
// non-blocking flag. Id 0 is the legacy default stream.
func NewStreamHandle(id int, nonBlocking bool) *Stream {
	return &Stream{id: id, nonBlocking: nonBlocking}
}

// NewEventHandle returns a detached event handle with the given id.
func NewEventHandle(id int) *Event {
	return &Event{id: id}
}
