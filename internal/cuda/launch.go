package cuda

import (
	"fmt"

	"cusango/internal/faults"
	"cusango/internal/kinterp"
	"cusango/internal/memspace"
)

// LaunchKernel enqueues kernel name on stream s (nil means the default
// stream) and, in this eager simulation, executes it immediately
// (cudaLaunchKernel via the generated device stub, paper Fig. 9).
//
// The pre-launch hook receives the argument values together with their
// read/write access attributes from the device-code analysis — the
// callback the CuSan compiler pass inserts before cudaLaunchKernel.
func (d *Device) LaunchKernel(name string, grid, block kinterp.Dim3, args []kinterp.Arg, s *Stream) error {
	ss, err := d.checkStream(s)
	if err != nil {
		return err
	}
	f := d.eng.Module().Func(name)
	if f == nil || !f.Kernel {
		return fmt.Errorf("%w: no kernel %q in module", ErrInvalidValue, name)
	}
	// Device code can only dereference device-accessible memory: reject
	// pageable host pointers at launch, as a real launch would fault.
	for i, a := range args {
		if a.Kind != kinterp.ArgPtr || !f.Params[i].Type.IsPtr() {
			continue
		}
		if a.Ptr == 0 {
			continue // null pointers are launchable; dereference faults
		}
		if k := memspace.KindOf(a.Ptr); !k.IsDeviceAccessible() {
			return fmt.Errorf("%w: kernel %q arg %d (%s) is %v memory",
				ErrInvalidPointer, name, i, f.Params[i].Name, k)
		}
	}
	// An injected launch failure fires before the instrumentation hook:
	// the tool must never account for work that was never enqueued.
	if flt := d.cfg.Inject.Fire(faults.CudaLaunch); flt != nil {
		return fmt.Errorf("%w: kernel %q (%w)", ErrLaunchFailure, name, flt)
	}
	l := &KernelLaunch{
		Name:   name,
		Grid:   grid,
		Block:  block,
		Args:   args,
		Params: f.Params,
		Access: d.analysis.KernelArgs(name, len(f.Params)),
		Stream: ss,
	}
	d.hooks.PreKernelLaunch(l)
	if d.cfg.AsyncStreams {
		return d.asyncLaunch(name, grid, block, args, ss)
	}
	return d.eng.Launch(name, grid, block, args, d.mem)
}

// RegisterNative installs a native (compiled) implementation for a
// kernel; execution uses it while the compiler analysis continues to
// work on the kernel IR (paper Fig. 7's split between analyzed IR and
// executed machine code).
func (d *Device) RegisterNative(name string, fn kinterp.ThreadRange) error {
	return d.eng.RegisterNative(name, fn)
}
