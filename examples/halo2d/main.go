// Halo2d example: the general 2D-decomposition halo exchange with
// pack/unpack kernels — every step of
//
//	pack kernel -> sync -> Isend | Irecv -> Waitall -> unpack kernel
//
// is a synchronization obligation. The example runs a 2x2 process grid,
// first correctly (clean under MUST & CuSan), then with the pack-to-send
// synchronization removed (detected), showing the tool catching a bug in
// library code rather than application code.
package main

import (
	"fmt"

	"cusango/internal/apps/halo2d"
	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
)

func module() *kir.Module {
	m := halo2d.Module()
	m.Add(kir.KernelFunc("smooth", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "in", Type: kir.TPtrF64},
		{Name: "stride", Type: kir.TInt},
		{Name: "rows", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		ix := e.GlobalIDX()
		iy := e.GlobalIDY()
		one := e.ConstI(1)
		inX := e.AndI(e.Ge(ix, one), e.Le(ix, e.Sub(e.Arg("stride"), e.ConstI(2))))
		inY := e.AndI(e.Ge(iy, one), e.Le(iy, e.Sub(e.Arg("rows"), e.ConstI(2))))
		e.If(e.AndI(inX, inY), func() {
			idx := e.Add(e.Mul(iy, e.Arg("stride")), ix)
			in := e.Arg("in")
			sum := e.Add(
				e.Add(e.LoadIdx(in, e.Sub(idx, one)), e.LoadIdx(in, e.Add(idx, one))),
				e.Add(e.LoadIdx(in, e.Sub(idx, e.Arg("stride"))), e.LoadIdx(in, e.Add(idx, e.Arg("stride")))),
			)
			e.StoreIdx(e.Arg("out"), idx, e.Mul(e.ConstF(0.25), sum))
		})
	}))
	return m
}

func run(skipPackSync bool) {
	d := halo2d.Decomp{PX: 2, PY: 2, NX: 32, NY: 32}
	res, err := core.Run(core.Config{
		Flavor: core.MUSTCuSan,
		Ranks:  4,
		Module: module(),
	}, func(s *core.Session) error {
		ex, err := halo2d.NewExchanger(s, d)
		if err != nil {
			return err
		}
		ex.SkipPackSync = skipPackSync
		field, err := s.CudaMallocF64(ex.FieldElems())
		if err != nil {
			return err
		}
		next, err := s.CudaMallocF64(ex.FieldElems())
		if err != nil {
			return err
		}
		nxl, nyl := d.LocalSize()
		stride, rows := int64(nxl+2), int64(nyl+2)
		grid := kinterp.Dim2(1, int(rows))
		block := kinterp.Dim2(int(stride), 1)
		var a, b memspace.Addr = field, next
		for it := 0; it < 5; it++ {
			if err := ex.Exchange(a); err != nil {
				return err
			}
			if err := s.Dev.LaunchKernel("smooth", grid, block, []kinterp.Arg{
				kinterp.Ptr(b), kinterp.Ptr(a), kinterp.Int(stride), kinterp.Int(rows),
			}, nil); err != nil {
				return err
			}
			s.Dev.DeviceSynchronize()
			a, b = b, a
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	if err := res.FirstError(); err != nil {
		panic(err)
	}
	fmt.Printf("  races: %d\n", res.TotalRaces())
	for i := range res.Ranks {
		for _, rep := range res.Ranks[i].Reports {
			fmt.Printf("  [rank %d] %s\n", res.Ranks[i].Rank, rep)
			return // one sample report is enough
		}
	}
}

func main() {
	fmt.Println("2x2 grid, pack/unpack halo exchange, CORRECT:")
	run(false)
	fmt.Println("\nsame, with the pack-to-send synchronization removed:")
	run(true)
}
