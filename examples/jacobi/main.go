// Jacobi example: the paper's first mini-app end to end.
//
// Runs the row-decomposed Jacobi solver (blocking CUDA-aware MPI halo
// exchange) under every instrumentation flavor, prints the residual, the
// per-flavor wall time, and — for the intentionally racy variant — the
// tool's reports. This is the "make jacobi-vanilla-run / jacobi-run"
// walk-through of the paper's artifact description.
package main

import (
	"fmt"
	"time"

	"cusango/internal/apps/jacobi"
	"cusango/internal/core"
)

func run(flavor core.Flavor, cfg jacobi.Config) (*core.Result, time.Duration, error) {
	start := time.Now()
	res, err := core.Run(core.Config{
		Flavor: flavor,
		Ranks:  2,
		Module: jacobi.Module(),
	}, func(s *core.Session) error {
		r, err := jacobi.Run(s, cfg)
		if err != nil {
			return err
		}
		if s.Rank() == 0 {
			fmt.Printf("  residual %.3e -> %.3e over %d iterations\n",
				r.FirstNorm, r.LastNorm, r.Iters)
		}
		return nil
	})
	return res, time.Since(start), err
}

func main() {
	cfg := jacobi.Config{NX: 256, NY: 128, Iters: 100}

	fmt.Println("=== correct Jacobi under every flavor ===")
	var vanilla time.Duration
	for _, flavor := range core.Flavors {
		fmt.Printf("flavor %s:\n", flavor)
		res, wall, err := run(flavor, cfg)
		if err != nil {
			panic(err)
		}
		if err := res.FirstError(); err != nil {
			panic(err)
		}
		if flavor == core.Vanilla {
			vanilla = wall
		}
		fmt.Printf("  wall %.3fs (%.2fx vanilla), races %d\n",
			wall.Seconds(), wall.Seconds()/vanilla.Seconds(), res.TotalRaces())
	}

	fmt.Println("\n=== Jacobi with the synchronization removed ===")
	racy := cfg
	racy.SkipSync = true
	res, _, err := run(core.MUSTCuSan, racy)
	if err != nil {
		panic(err)
	}
	if err := res.FirstError(); err != nil {
		panic(err)
	}
	fmt.Printf("must+cusan reports %d distinct race(s); first reports:\n", res.TotalRaces())
	shown := 0
	for i := range res.Ranks {
		for _, rep := range res.Ranks[i].Reports {
			if shown >= 3 {
				break
			}
			fmt.Printf("[rank %d] %s\n", res.Ranks[i].Rank, rep)
			shown++
		}
	}
}
