// TeaLeaf example: the paper's second mini-app — a CG heat-conduction
// solve with non-blocking CUDA-aware MPI halo exchange.
//
// Demonstrates the two hybrid bug classes of paper §III-D on the same
// application:
//
//	case (i)  CUDA-to-MPI: the halo send starts before the device
//	          finished producing the data (SkipSync);
//	case (ii) MPI-to-CUDA: the consuming kernel launches before
//	          MPI_Waitall completed the receives (SkipWait);
//
// and that each needs BOTH tools: MUST alone and CuSan alone miss them.
package main

import (
	"fmt"

	"cusango/internal/apps/tealeaf"
	"cusango/internal/core"
)

func run(flavor core.Flavor, cfg tealeaf.Config) *core.Result {
	res, err := core.Run(core.Config{
		Flavor: flavor,
		Ranks:  2,
		Module: tealeaf.Module(),
	}, func(s *core.Session) error {
		r, err := tealeaf.Run(s, cfg)
		if err != nil {
			return err
		}
		if s.Rank() == 0 && flavor == core.Vanilla {
			fmt.Printf("  CG: ||r||^2 %.3e -> %.3e over %d iterations\n",
				r.FirstRR, r.LastRR, r.Iters)
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	if err := res.FirstError(); err != nil {
		panic(err)
	}
	return res
}

func main() {
	cfg := tealeaf.Config{NX: 64, NY: 64, Iters: 25, K: 0.1}

	fmt.Println("=== correct TeaLeaf ===")
	run(core.Vanilla, cfg)
	res := run(core.MUSTCuSan, cfg)
	fmt.Printf("  must+cusan: %d races, %d MUST findings (expected: 0, 0)\n",
		res.TotalRaces(), res.TotalIssues())

	bugs := []struct {
		name string
		mut  func(*tealeaf.Config)
	}{
		{"missing deviceSynchronize before Isend (CUDA-to-MPI)",
			func(c *tealeaf.Config) { c.SkipSync = true }},
		{"matvec before MPI_Waitall (MPI-to-CUDA)",
			func(c *tealeaf.Config) { c.SkipWait = true }},
	}
	for _, bug := range bugs {
		fmt.Printf("\n=== bug: %s ===\n", bug.name)
		bcfg := cfg
		bug.mut(&bcfg)
		for _, flavor := range []core.Flavor{core.MUST, core.CuSan, core.MUSTCuSan} {
			res := run(flavor, bcfg)
			verdict := "MISSED"
			if res.TotalRaces() > 0 {
				verdict = "DETECTED"
			}
			fmt.Printf("  %-11s -> %s (%d reports)\n", flavor, verdict, res.TotalRaces())
		}
		full := run(core.MUSTCuSan, bcfg)
		for i := range full.Ranks {
			if len(full.Ranks[i].Reports) > 0 {
				fmt.Printf("  first report: [rank %d] %s\n",
					full.Ranks[i].Rank, full.Ranks[i].Reports[0])
				break
			}
		}
	}
}
