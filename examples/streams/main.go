// Streams example: CUDA stream, event, and legacy default-stream
// semantics as the tool models them (paper §III-A/§III-B, Fig. 3).
//
// Walks through: producer/consumer on unordered streams (race), the same
// ordered with cudaStreamWaitEvent (clean), the Fig. 3 legacy
// default-stream interleaving (clean), and the non-blocking-stream
// exemption (race) — each printed with the tool's verdict.
package main

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/cuda"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/memspace"
)

const n = 256

func module() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("produce", []kir.Param{
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("buf"), i, e.ToFloat(i))
		})
	}))
	m.Add(kir.KernelFunc("consume", []kir.Param{
		{Name: "out", Type: kir.TPtrF64},
		{Name: "buf", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("out"), i, e.Mul(e.LoadIdx(e.Arg("buf"), i), e.ConstF(3)))
		})
	}))
	return m
}

func launch(s *core.Session, kernel string, st *cuda.Stream, ptrs ...memspace.Addr) {
	args := make([]kinterp.Arg, 0, len(ptrs)+1)
	for _, p := range ptrs {
		args = append(args, kinterp.Ptr(p))
	}
	args = append(args, kinterp.Int(n))
	if err := s.Dev.LaunchKernel(kernel, kinterp.Dim(1), kinterp.Dim(n), args, st); err != nil {
		panic(err)
	}
}

func scenario(name string, expectRace bool, body func(s *core.Session)) {
	res, err := core.Run(core.Config{
		Flavor: core.MUSTCuSan, Ranks: 1, Module: module(),
	}, func(s *core.Session) error {
		body(s)
		return nil
	})
	if err != nil {
		panic(err)
	}
	if err := res.FirstError(); err != nil {
		panic(err)
	}
	verdict := "clean"
	if res.TotalRaces() > 0 {
		verdict = fmt.Sprintf("RACE (%d report(s))", res.TotalRaces())
	}
	marker := "as expected"
	if (res.TotalRaces() > 0) != expectRace {
		marker = "UNEXPECTED!"
	}
	fmt.Printf("%-55s -> %-18s [%s]\n", name, verdict, marker)
	for i := range res.Ranks {
		for _, rep := range res.Ranks[i].Reports {
			fmt.Printf("    %s\n", rep)
			break
		}
	}
}

func main() {
	alloc := func(s *core.Session) (memspace.Addr, memspace.Addr) {
		buf, err := s.CudaMallocF64(n)
		if err != nil {
			panic(err)
		}
		out, err := s.CudaMallocF64(n)
		if err != nil {
			panic(err)
		}
		return buf, out
	}

	scenario("two non-blocking streams, no ordering", true, func(s *core.Session) {
		buf, out := alloc(s)
		s1 := s.Dev.StreamCreate(true)
		s2 := s.Dev.StreamCreate(true)
		launch(s, "produce", s1, buf)
		launch(s, "consume", s2, out, buf)
		s.Dev.DeviceSynchronize()
	})

	scenario("same, ordered with event + cudaStreamWaitEvent", false, func(s *core.Session) {
		buf, out := alloc(s)
		s1 := s.Dev.StreamCreate(true)
		s2 := s.Dev.StreamCreate(true)
		ev := s.Dev.EventCreate()
		launch(s, "produce", s1, buf)
		must(s.Dev.EventRecord(ev, s1))
		must(s.Dev.StreamWaitEvent(s2, ev))
		launch(s, "consume", s2, out, buf)
		s.Dev.DeviceSynchronize()
	})

	scenario("legacy Fig. 3: blocking stream / default / blocking", false, func(s *core.Session) {
		buf, out := alloc(s)
		s1 := s.Dev.StreamCreate(false) // blocking user streams
		s2 := s.Dev.StreamCreate(false)
		launch(s, "produce", s1, buf)       // K1
		launch(s, "consume", nil, out, buf) // K0 on default: waits for K1
		launch(s, "produce", s2, out)       // K2: waits for K0
		must(s.Dev.StreamSynchronize(s2))   // covers K0 and K1 transitively
		_ = s.LoadF64(buf)
	})

	scenario("non-blocking stream is exempt from legacy barriers", true, func(s *core.Session) {
		buf, out := alloc(s)
		nb := s.Dev.StreamCreate(true)
		launch(s, "produce", nb, buf)
		launch(s, "consume", nil, out, buf) // default does NOT wait for nb
		s.Dev.DeviceSynchronize()
	})

	scenario("producer + synchronous D2H memcpy (implicit sync)", false, func(s *core.Session) {
		buf, _ := alloc(s)
		host := s.HostAllocF64(n)
		launch(s, "produce", nil, buf)
		must(s.Dev.Memcpy(host, buf, n*8))
		_ = s.LoadF64(host)
	})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
