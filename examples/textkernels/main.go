// Text kernels example: device code written in the IR's textual assembly
// form, parsed with kir.Parse, analyzed by the compiler pass, and run
// under the full tool stack — the closest analog of feeding hand-written
// LLVM IR through the CuSan toolchain.
//
// The example also prints the compiler analysis ("kernel analysis data",
// paper Fig. 7): saxpy's x is read-only, y is read-write — derived from
// the dataflow, not declared.
package main

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/mpi"
)

const kernelSource = `
device fma(f64 a, f64 x, f64 y) -> f64 {
  locals %3:f64
b0: ; entry
  %3 = fmul %0, %1
  %3 = fadd %3, %2
  ret %3
}

kernel saxpy(f64* y, f64* x, f64 a, i64 n) {
  locals %4:i64 %5:i64 %6:f64 %7:f64 %8:f64* %9:f64* %10:f64
b0: ; entry
  %4 = globalId.x
  %5 = icmp.lt %4, %3
  condbr %5, b1, b2
b1: ; body
  %8 = gep %1, %4
  %6 = load %8
  %9 = gep %0, %4
  %7 = load %9
  %10 = call @fma(%2, %6, %7)
  store %9, %10
  br b2
b2: ; done
  ret
}
`

func main() {
	module, err := kir.Parse(kernelSource)
	if err != nil {
		panic(err)
	}
	fmt.Println("parsed module:")
	fmt.Println(module)

	const n = 1024
	res, err := core.Run(core.Config{
		Flavor: core.MUSTCuSan,
		Ranks:  2,
		Module: module,
	}, func(s *core.Session) error {
		if s.Rank() == 0 {
			// The "kernel analysis data" the compiler pass derived.
			fmt.Printf("compiler access analysis:\n%s\n", s.Dev.Analysis())
		}
		y, err := s.CudaMallocF64(n)
		if err != nil {
			return err
		}
		x, err := s.CudaMallocF64(n)
		if err != nil {
			return err
		}
		if err := s.Dev.Memset(x, 0, n*8); err != nil {
			return err
		}
		if err := s.Dev.LaunchKernel("saxpy", kinterp.Dim(n/256), kinterp.Dim(256),
			[]kinterp.Arg{kinterp.Ptr(y), kinterp.Ptr(x), kinterp.F64(2.0), kinterp.Int(n)},
			nil); err != nil {
			return err
		}
		s.Dev.DeviceSynchronize()
		// Ring-exchange the results (device pointers, CUDA-aware).
		peer := 1 - s.Rank()
		recv, err := s.CudaMallocF64(n)
		if err != nil {
			return err
		}
		_, err = s.Comm.Sendrecv(
			y, n, mpi.Float64, peer, 0,
			recv, n, mpi.Float64, peer, 0,
		)
		return err
	})
	if err != nil {
		panic(err)
	}
	if err := res.FirstError(); err != nil {
		panic(err)
	}
	fmt.Printf("ran on 2 ranks under must+cusan: %d races (expected 0)\n",
		res.TotalRaces())
}
