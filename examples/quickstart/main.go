// Quickstart: the paper's Fig. 4 in 60 lines.
//
// Rank 0 fills a device buffer with a kernel and sends it with
// CUDA-aware MPI; rank 1 receives into device memory and consumes it
// with a second kernel. Run once with the missing synchronization (the
// bug of paper Fig. 4) and once fixed, under the full MUST & CuSan
// instrumentation, and print what the tool says.
package main

import (
	"fmt"

	"cusango/internal/core"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/mpi"
)

// module defines the two kernels of Fig. 4.
func module() *kir.Module {
	m := kir.NewModule()
	m.Add(kir.KernelFunc("kernel", []kir.Param{
		{Name: "data", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			e.StoreIdx(e.Arg("data"), i, e.Mul(e.ToFloat(i), e.ConstF(2)))
		})
	}))
	m.Add(kir.KernelFunc("kernel_2", []kir.Param{
		{Name: "data", Type: kir.TPtrF64},
		{Name: "n", Type: kir.TInt},
	}, func(e *kir.Emitter) {
		i := e.GlobalIDX()
		e.If(e.Lt(i, e.Arg("n")), func() {
			p := e.GEP(e.Arg("data"), i)
			e.Store(p, e.Add(e.Load(p), e.ConstF(1)))
		})
	}))
	return m
}

func fig4(synchronize bool) func(s *core.Session) error {
	const size = 1024
	return func(s *core.Session) error {
		dData, err := s.CudaMallocF64(size) // cudaMalloc(&d_data, ...)
		if err != nil {
			return err
		}
		if s.Rank() == 0 {
			err := s.Dev.LaunchKernel("kernel", kinterp.Dim(size/256), kinterp.Dim(256),
				[]kinterp.Arg{kinterp.Ptr(dData), kinterp.Int(size)}, nil)
			if err != nil {
				return err
			}
			if synchronize {
				s.Dev.DeviceSynchronize() // blocks until kernel completes
			}
			// Send device data directly — CUDA-aware MPI.
			return s.Comm.Send(dData, size, mpi.Float64, 1, 0)
		}
		req, err := s.Comm.Irecv(dData, size, mpi.Float64, 0, 0) // recv device data
		if err != nil {
			return err
		}
		if _, err := s.Comm.Wait(req); err != nil { // blocks until Irecv completes
			return err
		}
		return s.Dev.LaunchKernel("kernel_2", kinterp.Dim(size/256), kinterp.Dim(256),
			[]kinterp.Arg{kinterp.Ptr(dData), kinterp.Int(size)}, nil)
	}
}

func main() {
	for _, variant := range []struct {
		name string
		sync bool
	}{
		{"WITHOUT cudaDeviceSynchronize (the Fig. 4 bug)", false},
		{"WITH cudaDeviceSynchronize (fixed)", true},
	} {
		fmt.Printf("--- running %s ---\n", variant.name)
		res, err := core.Run(core.Config{
			Flavor: core.MUSTCuSan,
			Ranks:  2,
			Module: module(),
		}, fig4(variant.sync))
		if err != nil {
			panic(err)
		}
		if err := res.FirstError(); err != nil {
			panic(err)
		}
		if res.TotalRaces() == 0 {
			fmt.Println("no data races detected")
		}
		for i := range res.Ranks {
			for _, rep := range res.Ranks[i].Reports {
				fmt.Printf("[rank %d] %s\n", res.Ranks[i].Rank, rep)
			}
		}
		fmt.Println()
	}
}
