// cusan-testsuite runs the classified correctness suite (the cusan-tests
// analog, paper §VI-C) and prints one PASS/FAIL line per case, in the
// style of the paper's llvm-lit output. Cases dispatch through the
// campaign engine, so -j parallelizes the sweep without changing the
// output: lines print in suite order whatever the completion order.
//
// Usage:
//
//	cusan-testsuite [-filter substring] [-j N] [-engine fast|slow] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cusango/internal/campaign"
	"cusango/internal/core"
	"cusango/internal/testsuite"
	"cusango/internal/tsan"
)

func main() {
	filter := flag.String("filter", "", "only run cases whose name contains this substring")
	workers := flag.Int("j", 0, "worker count (0 = NumCPU)")
	engineName := flag.String("engine", "fast",
		"shadow engine: fast (batched) or slow (reference oracle)")
	verbose := flag.Bool("v", false, "print each case's documentation line")
	doc := flag.Bool("doc", false, "emit the feature-documentation matrix (markdown) instead of running")
	version := flag.Bool("version", false, "print build identification and exit")
	flag.Parse()

	if *version {
		fmt.Println(core.VersionLine("cusan-testsuite"))
		return
	}

	engine, err := tsan.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cases := testsuite.Cases()
	if *doc {
		emitFeatureDoc(cases)
		return
	}
	var selected []testsuite.Case
	for _, c := range cases {
		if *filter == "" || strings.Contains(c.Name, *filter) {
			selected = append(selected, c)
		}
	}
	jobs := testsuite.SuiteJobs(selected, []tsan.Engine{engine})
	rep := campaign.Run(jobs, testsuite.ExecuteJob, campaign.Options{Workers: *workers})
	failures := 0
	for i, r := range rep.Records {
		status := "PASS"
		if r.Verdict != campaign.VerdictPass {
			status = "FAIL"
			failures++
		}
		detail := ""
		if r.AppFault != "" {
			detail = " err=" + r.AppFault
		}
		fmt.Printf("%s: CuSanTest :: %s (races=%d issues=%d%s) (%d of %d)\n",
			status, r.Case, r.Races, r.Issues, detail, i+1, len(selected))
		if *verbose {
			fmt.Printf("    %s\n", selected[i].Doc)
		}
	}
	fmt.Printf("\n%d/%d cases classified correctly\n", len(selected)-failures, len(selected))
	if failures > 0 {
		os.Exit(1)
	}
}

// emitFeatureDoc renders the suite as the feature-documentation matrix
// the paper describes as the test suite's second purpose (§VI-C): which
// CUDA/MPI behaviours are supported and how each is classified.
func emitFeatureDoc(cases []testsuite.Case) {
	fmt.Println("# Supported feature matrix")
	fmt.Println()
	fmt.Println("Generated from the classified test suite (`cusan-testsuite -doc`).")
	fmt.Println()
	fmt.Println("Every case below is also a campaign job: `cusan-campaign` sweeps the")
	fmt.Println("full matrix — plain classification, chaos soak under seeded fault")
	fmt.Println("schedules, and record/replay parity — across both shadow engines in")
	fmt.Println("parallel, with byte-deterministic JSONL reports (DESIGN.md §10).")
	fmt.Println()
	fmt.Println("Checker performance is tracked separately: `cusan-perf` records the")
	fmt.Println("benchmark scenario catalog into schema-versioned BENCH files and CI")
	fmt.Println("gates on regressions against committed baselines (DESIGN.md §11).")
	byCat := map[string][]testsuite.Case{}
	var order []string
	for _, c := range cases {
		cat, _, _ := strings.Cut(c.Name, "/")
		if _, seen := byCat[cat]; !seen {
			order = append(order, cat)
		}
		byCat[cat] = append(byCat[cat], c)
	}
	for _, cat := range order {
		fmt.Printf("\n## %s\n\n", cat)
		fmt.Println("| case | expected | behaviour |")
		fmt.Println("|---|---|---|")
		for _, c := range byCat[cat] {
			verdict := "clean"
			if c.ExpectRace {
				verdict = "data race"
			}
			if c.ExpectIssue != nil {
				verdict = "finding: " + c.ExpectIssue.String()
			}
			_, name, _ := strings.Cut(c.Name, "/")
			fmt.Printf("| %s | %s | %s |\n", name, verdict, c.Doc)
		}
	}
}
