// cusan-testsuite runs the classified correctness suite (the cusan-tests
// analog, paper §VI-C) and prints one PASS/FAIL line per case, in the
// style of the paper's llvm-lit output.
//
// Usage:
//
//	cusan-testsuite [-filter substring] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cusango/internal/testsuite"
)

func main() {
	filter := flag.String("filter", "", "only run cases whose name contains this substring")
	verbose := flag.Bool("v", false, "print each case's documentation line")
	doc := flag.Bool("doc", false, "emit the feature-documentation matrix (markdown) instead of running")
	flag.Parse()

	cases := testsuite.Cases()
	if *doc {
		emitFeatureDoc(cases)
		return
	}
	var selected []testsuite.Case
	for _, c := range cases {
		if *filter == "" || strings.Contains(c.Name, *filter) {
			selected = append(selected, c)
		}
	}
	failures := 0
	for i, c := range selected {
		v := testsuite.RunCase(c)
		fmt.Printf("%s (%d of %d)\n", v, i+1, len(selected))
		if *verbose {
			fmt.Printf("    %s\n", c.Doc)
		}
		if !v.Pass() {
			failures++
		}
	}
	fmt.Printf("\n%d/%d cases classified correctly\n", len(selected)-failures, len(selected))
	if failures > 0 {
		os.Exit(1)
	}
}

// emitFeatureDoc renders the suite as the feature-documentation matrix
// the paper describes as the test suite's second purpose (§VI-C): which
// CUDA/MPI behaviours are supported and how each is classified.
func emitFeatureDoc(cases []testsuite.Case) {
	fmt.Println("# Supported feature matrix")
	fmt.Println()
	fmt.Println("Generated from the classified test suite (`cusan-testsuite -doc`).")
	byCat := map[string][]testsuite.Case{}
	var order []string
	for _, c := range cases {
		cat, _, _ := strings.Cut(c.Name, "/")
		if _, seen := byCat[cat]; !seen {
			order = append(order, cat)
		}
		byCat[cat] = append(byCat[cat], c)
	}
	for _, cat := range order {
		fmt.Printf("\n## %s\n\n", cat)
		fmt.Println("| case | expected | behaviour |")
		fmt.Println("|---|---|---|")
		for _, c := range byCat[cat] {
			verdict := "clean"
			if c.ExpectRace {
				verdict = "data race"
			}
			if c.ExpectIssue != nil {
				verdict = "finding: " + c.ExpectIssue.String()
			}
			_, name, _ := strings.Cut(c.Name, "/")
			fmt.Printf("| %s | %s | %s |\n", name, verdict, c.Doc)
		}
	}
}
