// cusan-bench regenerates the paper's evaluation tables and figures
// (Fig. 10, Fig. 11, Table I, Fig. 12, plus the §V-B/§VI-D ablations)
// against the simulated substrate.
//
// Usage:
//
//	cusan-bench [-experiment all|fig10|fig11|table1|fig12|ablation|cells|engine]
//	            [-engine batched|slow] [-runs N] [-warmup N] [-ranks N]
//	            [-jacobi-nx N] [-jacobi-ny N] [-jacobi-iters N]
//	            [-tealeaf-nx N] [-tealeaf-ny N] [-tealeaf-iters N]
package main

import (
	"flag"
	"fmt"
	"os"

	"cusango/internal/bench"
	"cusango/internal/tsan"
)

func main() {
	cfg := bench.DefaultConfig()
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, fig10, fig11, table1, fig12, ablation, cells, engine")
	engineName := flag.String("engine", "",
		"shadow-range engine for all measurements: batched (default) or slow (reference walk)")
	flag.IntVar(&cfg.Runs, "runs", cfg.Runs, "measured runs per data point")
	flag.IntVar(&cfg.Warmup, "warmup", cfg.Warmup, "warmup runs per data point")
	flag.IntVar(&cfg.Ranks, "ranks", cfg.Ranks, "MPI world size")
	flag.IntVar(&cfg.JacobiCfg.NX, "jacobi-nx", cfg.JacobiCfg.NX, "Jacobi global NX")
	flag.IntVar(&cfg.JacobiCfg.NY, "jacobi-ny", cfg.JacobiCfg.NY, "Jacobi global NY")
	flag.IntVar(&cfg.JacobiCfg.Iters, "jacobi-iters", cfg.JacobiCfg.Iters, "Jacobi iterations")
	flag.IntVar(&cfg.TeaLeafCfg.NX, "tealeaf-nx", cfg.TeaLeafCfg.NX, "TeaLeaf global NX")
	flag.IntVar(&cfg.TeaLeafCfg.NY, "tealeaf-ny", cfg.TeaLeafCfg.NY, "TeaLeaf global NY")
	flag.IntVar(&cfg.TeaLeafCfg.Iters, "tealeaf-iters", cfg.TeaLeafCfg.Iters, "TeaLeaf CG iterations")
	flag.Parse()

	eng, err := tsan.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cusan-bench: %v\n", err)
		os.Exit(2)
	}
	cfg.TSanCfg.Engine = eng

	type exp struct {
		name string
		run  func(bench.Config) (*bench.Table, error)
	}
	all := []exp{
		{"fig10", bench.Fig10},
		{"fig11", bench.Fig11},
		{"table1", bench.Table1},
		{"fig12", bench.Fig12},
		{"ablation", bench.Ablation},
		{"cells", bench.CellsAblation},
		{"engine", bench.EngineAblation},
	}
	ran := false
	for _, e := range all {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		tab, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cusan-bench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "cusan-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}
