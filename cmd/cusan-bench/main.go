// cusan-bench regenerates the paper's evaluation tables and figures
// (Fig. 10, Fig. 11, Table I, Fig. 12, plus the §V-B/§VI-D ablations)
// against the simulated substrate.
//
// Usage:
//
//	cusan-bench [-experiment all|fig10|fig11|table1|fig12|ablation|cells|engine|campaign]
//	            [-app jacobi,tealeaf,halo2d] [-engine batched|slow]
//	            [-shards N] [-batch-workers N]
//	            [-runs N] [-warmup N] [-ranks N]
//	            [-cpuprofile f] [-memprofile f]
//	            [-jacobi-nx N] [-jacobi-ny N] [-jacobi-iters N]
//	            [-tealeaf-nx N] [-tealeaf-ny N] [-tealeaf-iters N]
//	            [-halo2d-nx N] [-halo2d-ny N] [-halo2d-iters N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cusango/internal/bench"
	"cusango/internal/core"
	"cusango/internal/perf"
	"cusango/internal/tsan"
)

// main routes every exit through run so the pprof stop hook always
// fires — a profile of a failing experiment is the point.
func main() {
	os.Exit(run())
}

func run() int {
	cfg := bench.DefaultConfig()
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, fig10, fig11, table1, fig12, ablation, cells, engine, campaign")
	appList := flag.String("app", "",
		"comma-separated apps for the overhead experiments: jacobi, tealeaf, halo2d (default: the paper's pair)")
	engineName := flag.String("engine", "",
		"shadow-range engine for all measurements: batched (default; packed shadow words, 64-bit conflict screening, arena-backed zero-alloc hot path) or slow (granule-at-a-time reference walk, the differential oracle)")
	shards := flag.Int("shards", 0,
		"shard the shadow page index over this many buckets (rounded up to a power of two; 0/1 = single index); kernel-argument batches are then checked by up to GOMAXPROCS workers")
	batchWorkers := flag.Int("batch-workers", 0,
		"cap the goroutines used for sharded batch checking (0 = GOMAXPROCS; needs -shards > 1)")
	flag.IntVar(&cfg.Runs, "runs", cfg.Runs, "measured runs per data point")
	flag.IntVar(&cfg.Warmup, "warmup", cfg.Warmup, "warmup runs per data point")
	flag.IntVar(&cfg.Ranks, "ranks", cfg.Ranks, "MPI world size")
	flag.IntVar(&cfg.JacobiCfg.NX, "jacobi-nx", cfg.JacobiCfg.NX, "Jacobi global NX")
	flag.IntVar(&cfg.JacobiCfg.NY, "jacobi-ny", cfg.JacobiCfg.NY, "Jacobi global NY")
	flag.IntVar(&cfg.JacobiCfg.Iters, "jacobi-iters", cfg.JacobiCfg.Iters, "Jacobi iterations")
	flag.IntVar(&cfg.TeaLeafCfg.NX, "tealeaf-nx", cfg.TeaLeafCfg.NX, "TeaLeaf global NX")
	flag.IntVar(&cfg.TeaLeafCfg.NY, "tealeaf-ny", cfg.TeaLeafCfg.NY, "TeaLeaf global NY")
	flag.IntVar(&cfg.TeaLeafCfg.Iters, "tealeaf-iters", cfg.TeaLeafCfg.Iters, "TeaLeaf CG iterations")
	flag.IntVar(&cfg.Halo2DCfg.NX, "halo2d-nx", cfg.Halo2DCfg.NX, "Halo2D global NX")
	flag.IntVar(&cfg.Halo2DCfg.NY, "halo2d-ny", cfg.Halo2DCfg.NY, "Halo2D global NY")
	flag.IntVar(&cfg.Halo2DCfg.Iters, "halo2d-iters", cfg.Halo2DCfg.Iters, "Halo2D iterations")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	version := flag.Bool("version", false, "print build identification and exit")
	flag.Parse()

	if *version {
		fmt.Println(core.VersionLine("cusan-bench"))
		return 0
	}

	eng, err := tsan.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cusan-bench: %v\n", err)
		return 2
	}
	cfg.TSanCfg.Engine = eng
	cfg.TSanCfg.Shards = *shards
	cfg.TSanCfg.BatchWorkers = *batchWorkers

	if *appList != "" {
		cfg.Apps = nil
		for _, name := range strings.Split(*appList, ",") {
			app, err := bench.ParseApp(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cusan-bench: %v\n", err)
				return 2
			}
			cfg.Apps = append(cfg.Apps, app)
		}
	}

	stop, err := perf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cusan-bench: %v\n", err)
		return 3
	}
	code := runExperiments(cfg, *experiment)
	if err := stop(); err != nil {
		fmt.Fprintf(os.Stderr, "cusan-bench: %v\n", err)
		if code == 0 {
			code = 3
		}
	}
	return code
}

func runExperiments(cfg bench.Config, experiment string) int {

	type exp struct {
		name string
		run  func(bench.Config) (*bench.Table, error)
	}
	all := []exp{
		{"fig10", bench.Fig10},
		{"fig11", bench.Fig11},
		{"table1", bench.Table1},
		{"fig12", bench.Fig12},
		{"ablation", bench.Ablation},
		{"cells", bench.CellsAblation},
		{"engine", bench.EngineAblation},
		{"campaign", bench.CampaignScaling},
	}
	ran := false
	for _, e := range all {
		if experiment != "all" && experiment != e.name {
			continue
		}
		ran = true
		tab, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cusan-bench: %s: %v\n", e.name, err)
			return 1
		}
		tab.Render(os.Stdout)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "cusan-bench: unknown experiment %q\n", experiment)
		return 2
	}
	return 0
}
