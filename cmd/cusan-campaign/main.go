// cusan-campaign shards the full check campaign — suite
// classification, chaos soak, replay parity — across a worker pool
// and emits a versioned JSONL findings report plus a human summary.
//
// Usage:
//
//	cusan-campaign [-j N] [-kinds suite,chaos,replay,explore,static] [-filter substr]
//	               [-engines fast,slow] [-seeds N] [-faults-rate R]
//	               [-explore-budget N] [-explore-bound N]
//	               [-timeout d] [-max-steps N] [-retries N]
//	               [-cache dir] [-salt s] [-out report.jsonl] [-timings] [-v]
//	               [-cpuprofile f] [-memprofile f]
//
// The explore kind (off by default: it runs many schedules per job)
// systematically enumerates each case's completion schedules under the
// controlled scheduler with DPOR pruning, recording exact explored and
// pruned counts per case and — for known-racy cases — a minimal racy
// schedule spec replayable via `cusan-run -schedule`.
//
// The canonical report (default) is byte-identical for any -j: results
// aggregate in job enumeration order and wall-clock facts (durations,
// cache status) are excluded. -timings switches to the volatile report
// that includes them. -cache enables the content-addressed result
// cache: a re-run of an unchanged campaign against a warm cache
// executes zero jobs. The cache key incorporates a build salt (the VCS
// revision by default), so a new build invalidates every entry.
//
// Supervision: -timeout puts a wall-clock watchdog on every job
// attempt (a hung job is torn down and reports the deterministic
// "timeout" verdict, which names only the configured deadline and is
// never cached); -max-steps caps each job's logical steps (exceeding
// it is the deterministic, cacheable "budget" verdict — max-steps is
// mixed into the cache salt because it changes verdicts); -retries
// re-runs infra-class failures (timeouts, contained panics) with
// deterministic exponential backoff. None of the three can change the
// canonical bytes of a verdict-class record.
//
// Exit codes (mirroring cusan-run):
//
//	0  clean campaign, no findings
//	1  findings (misclassifications, chaos violations, parity splits)
//	2  usage error
//	3  infrastructure error (a job could not run)
//	4  degraded (contained checker crash; verdicts partial)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"cusango/internal/campaign"
	"cusango/internal/core"
	"cusango/internal/perf"
	"cusango/internal/testsuite"
	"cusango/internal/tsan"
)

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
	exitError    = 3
	exitDegraded = 4
)

// main routes every exit through run so the pprof stop hook fires
// before the process dies — a profile of a slow or failing campaign
// is exactly what the flags are for.
func main() {
	os.Exit(run())
}

func run() int {
	jobs := flag.Int("j", runtime.NumCPU(), "worker count")
	kindsFlag := flag.String("kinds", "suite,chaos,replay",
		"job kinds to enumerate: suite, chaos, replay, explore, static")
	filter := flag.String("filter", "", "substring filter on case names")
	enginesFlag := flag.String("engines", "fast,slow", "shadow engines to sweep")
	seeds := flag.Int("seeds", 25, "chaos seed count (seeds 1..N)")
	rate := flag.Float64("faults-rate", 0.05, "chaos per-site fault rate")
	exploreBudget := flag.Int("explore-budget", 0,
		"explore kind: max schedules per case (0 = testsuite default)")
	exploreBound := flag.Int("explore-bound", 0,
		"explore kind: preemption bound per schedule (0 = unbounded)")
	timeout := flag.Duration("timeout", 0,
		"wall-clock deadline per job attempt (0 = no watchdog)")
	maxSteps := flag.Int64("max-steps", 0,
		"logical step budget per job (0 = unlimited; changes verdicts, salts the cache)")
	retries := flag.Int("retries", 0,
		"max supervised retries of infra-class failures (timeouts, panics)")
	cacheDir := flag.String("cache", "", "result cache directory (empty = no cache)")
	salt := flag.String("salt", "", "cache build salt (empty = derive from build info)")
	out := flag.String("out", "", "JSONL report path (empty = none, - = stdout)")
	timings := flag.Bool("timings", false,
		"emit volatile report fields (durations, cache status) — not byte-stable")
	verbose := flag.Bool("v", false, "print every non-pass record")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	version := flag.Bool("version", false, "print build identification and exit")
	flag.Parse()

	if *version {
		fmt.Println(core.VersionLine("cusan-campaign"))
		return exitClean
	}

	var engines []tsan.Engine
	for _, name := range strings.Split(*enginesFlag, ",") {
		eng, err := tsan.ParseEngine(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cusan-campaign:", err)
			return exitUsage
		}
		engines = append(engines, eng)
	}
	if *seeds < 0 || *rate < 0 || *rate > 1 {
		fmt.Fprintln(os.Stderr, "cusan-campaign: -seeds must be >= 0, -faults-rate in [0,1]")
		return exitUsage
	}

	cases := testsuite.Cases()
	if *filter != "" {
		kept := cases[:0]
		for _, c := range cases {
			if strings.Contains(c.Name, *filter) {
				kept = append(kept, c)
			}
		}
		cases = kept
		if len(cases) == 0 {
			fmt.Fprintf(os.Stderr, "cusan-campaign: no case matches %q\n", *filter)
			return exitUsage
		}
	}
	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = uint64(i + 1)
	}

	var jobList []campaign.Job
	for _, kind := range strings.Split(*kindsFlag, ",") {
		switch strings.TrimSpace(kind) {
		case testsuite.KindSuite:
			jobList = append(jobList, testsuite.SuiteJobs(cases, engines)...)
		case testsuite.KindChaos:
			jobList = append(jobList, testsuite.ChaosJobs(cases, seedList, *rate, engines)...)
		case testsuite.KindReplay:
			jobList = append(jobList, testsuite.ReplayJobs(cases, engines)...)
		case testsuite.KindExplore:
			jobList = append(jobList, testsuite.ExploreJobs(cases, engines, *exploreBudget, *exploreBound)...)
		case testsuite.KindStatic:
			jobList = append(jobList, testsuite.StaticJobs()...)
		default:
			fmt.Fprintf(os.Stderr, "cusan-campaign: unknown kind %q\n", kind)
			return exitUsage
		}
	}

	if *timeout < 0 || *maxSteps < 0 || *retries < 0 {
		fmt.Fprintln(os.Stderr, "cusan-campaign: -timeout, -max-steps and -retries must be >= 0")
		return exitUsage
	}
	opt := campaign.Options{Workers: *jobs, OnProgress: progressLine()}
	if *cacheDir != "" {
		cache, err := campaign.OpenDir(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cusan-campaign:", err)
			return exitError
		}
		opt.Cache = cache
		opt.Salt = *salt
		if opt.Salt == "" {
			opt.Salt = campaign.BuildSalt()
		}
		// MaxSteps changes verdicts, so it is part of the cache identity;
		// the wall-clock timeout is not (timeout records are never cached).
		opt.Salt = campaign.LimitsSalt(opt.Salt, *maxSteps)
	}
	exec := campaign.Supervise(testsuite.Executor(*maxSteps), campaign.Limits{
		Timeout: *timeout,
		Retries: *retries,
	})

	stopProfiles, err := perf.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-campaign:", err)
		return exitError
	}
	rep := campaign.Run(jobList, exec, opt)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "cusan-campaign:", err)
		return exitError
	}
	fmt.Fprint(os.Stderr, "\r\033[K") // clear the progress line

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cusan-campaign:", err)
				return exitError
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSONL(w, *timings); err != nil {
			fmt.Fprintln(os.Stderr, "cusan-campaign:", err)
			return exitError
		}
	}

	degraded := 0
	infraErrs := 0
	for _, r := range rep.Records {
		degraded += r.Degraded
		if r.Verdict == campaign.VerdictError {
			infraErrs++
		}
		if *verbose && r.Verdict != campaign.VerdictPass {
			fmt.Printf("%s %s [%s] seed=%d: %s\n", r.Verdict, r.Case, r.Engine, r.Seed, r.AppFault)
			for _, f := range r.Findings {
				fmt.Printf("  [%s] %s: %s\n", f.FP, f.Kind, f.Detail)
			}
		}
	}
	fmt.Print(rep.Summary())

	_, fail, _ := rep.Counts()
	// Precedence mirrors cusan-run: an infrastructure error trumps a
	// degraded verdict trumps findings — a campaign that could not run
	// its jobs cannot vouch for "clean".
	switch {
	case infraErrs > 0:
		return exitError
	case degraded > 0:
		return exitDegraded
	case fail > 0:
		return exitFindings
	}
	return exitClean
}

// progressLine returns a throttled \r-progress callback for stderr.
func progressLine() func(campaign.Progress) {
	var mu sync.Mutex
	var last time.Time
	return func(p campaign.Progress) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if now.Sub(last) < 100*time.Millisecond && p.Done != p.Total {
			return
		}
		last = now
		rate := float64(p.Done) / p.Elapsed.Seconds()
		fmt.Fprintf(os.Stderr, "\r\033[K%d/%d jobs  executed=%d cache-hits=%d failed=%d  %.0f jobs/s",
			p.Done, p.Total, p.Executed, p.CacheHits, p.Failed, rate)
	}
}
