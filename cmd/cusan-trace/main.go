// cusan-trace records, replays, summarizes, and exports the per-rank
// CUDA+MPI event streams of the mini-apps.
//
// Usage:
//
//	cusan-trace record [-app jacobi|tealeaf|halo2d] [-flavor F] [-ranks N]
//	                   [-nx N] [-ny N] [-iters N] [-inject-race] [-skip-wait]
//	                   [-o prefix]
//	    Run the app with trace recording; writes prefix.rankN.cutrace
//	    per rank. Recording is flavor-independent — even a vanilla run
//	    captures the full event stream.
//
//	cusan-trace replay [-engine fast|slow] [-salvage] file.cutrace...
//	    Re-analyze recorded streams offline through the full
//	    cusan/must/tsan pipeline; prints race reports and MUST findings
//	    and exits non-zero if any are found.
//
//	cusan-trace stats [-salvage] file.cutrace...
//	    Print per-op counts, data volumes, and per-stream histograms.
//
// -salvage tolerates torn trace files (a rank that died mid-write):
// the longest cleanly-decodable prefix is used and the loss reported
// on stderr. Without it, a torn file is a hard error.
//
//	cusan-trace export [-format chrome] [-o out.json] file.cutrace...
//	    Convert traces to a timeline. The chrome format is Chrome
//	    trace_event JSON: load it in Perfetto (ui.perfetto.dev) or
//	    chrome://tracing; one process per rank, one track per CUDA
//	    stream plus host and MPI-request lanes, with synchronization
//	    drawn as flow arrows.
package main

import (
	"flag"
	"fmt"
	"os"

	"cusango/internal/apps"
	"cusango/internal/core"
	"cusango/internal/trace"
	"cusango/internal/tsan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println(core.VersionLine("cusan-trace"))
		return
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "cusan-trace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cusan-trace <record|replay|stats|export> [flags]")
	fmt.Fprintln(os.Stderr, "  record  run a mini-app with per-rank trace recording")
	fmt.Fprintln(os.Stderr, "  replay  re-analyze recorded traces offline")
	fmt.Fprintln(os.Stderr, "  stats   summarize recorded traces")
	fmt.Fprintln(os.Stderr, "  export  convert traces to a Chrome trace_event timeline")
}

func cmdRecord(argv []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	appName := fs.String("app", "jacobi", "mini-app to record")
	flavorName := fs.String("flavor", "must+cusan", "instrumentation flavor to run under")
	ranks := fs.Int("ranks", 2, "MPI world size")
	nx := fs.Int("nx", 0, "global NX (0 = app default)")
	ny := fs.Int("ny", 0, "global NY (0 = app default)")
	iters := fs.Int("iters", 0, "iterations (0 = app default)")
	injectRace := fs.Bool("inject-race", false, "inject the app's primary race")
	skipWait := fs.Bool("skip-wait", false, "tealeaf only: use the halo before MPI_Waitall")
	out := fs.String("o", "", "output prefix (default: the app name)")
	fs.Parse(argv)

	flavor, err := core.ParseFlavor(*flavorName)
	if err != nil {
		return err
	}
	app, err := apps.Get(*appName)
	if err != nil {
		return err
	}
	prefix := *out
	if prefix == "" {
		prefix = app.Name
	}

	files := make([]*os.File, *ranks)
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	var ferr error
	cfg := core.Config{
		Flavor: flavor,
		Ranks:  *ranks,
		Module: app.Module(),
		Trace: func(rank int) *trace.Writer {
			name := fmt.Sprintf("%s.rank%d.cutrace", prefix, rank)
			f, err := os.Create(name)
			if err != nil {
				ferr = err
				return nil
			}
			files[rank] = f
			return trace.NewWriter(f, trace.Header{
				Rank: rank, WorldSize: *ranks, Label: app.Name,
			})
		},
	}
	opt := apps.Options{
		NX: *nx, NY: *ny, Iters: *iters,
		InjectRace: *injectRace, SkipWait: *skipWait,
	}
	res, err := core.Run(cfg, func(s *core.Session) error {
		line, err := app.Run(s, opt)
		if err != nil {
			return err
		}
		if s.Rank() == 0 {
			fmt.Println(line)
		}
		return nil
	})
	if ferr != nil {
		return ferr
	}
	if err != nil {
		return err
	}
	if err := res.FirstError(); err != nil {
		return err
	}
	for rank, f := range files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil {
			return err
		}
		files[rank] = nil
		fmt.Printf("wrote %s.rank%d.cutrace\n", prefix, rank)
	}
	if n := res.TotalRaces() + res.TotalIssues(); n > 0 {
		fmt.Printf("(live run reported %d finding(s); replay will reproduce them)\n", n)
	}
	return nil
}

// loadTraces reads and decodes trace files. With salvage enabled, a
// torn file (e.g. from a rank that died mid-write) yields its longest
// valid prefix with a note on stderr instead of a hard error; header
// damage is always fatal — there is no rank identity to attribute a
// salvaged prefix to.
func loadTraces(paths []string, salvage bool) ([]*trace.Trace, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("no trace files given")
	}
	traces := make([]*trace.Trace, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		if salvage {
			tr, info, err := trace.DecodeSalvage(data)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", p, err)
			}
			if info.Truncated {
				fmt.Fprintf(os.Stderr,
					"cusan-trace: %s: salvaged %d event(s) (%d of %d bytes valid; %s)\n",
					p, info.Events, info.ValidBytes, info.TotalBytes, info.Reason)
			}
			traces[i] = tr
			continue
		}
		tr, err := trace.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w (retry with -salvage to recover the valid prefix)", p, err)
		}
		traces[i] = tr
	}
	return traces, nil
}

func cmdReplay(argv []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	engineName := fs.String("engine", "fast",
		"shadow engine: fast (batched) or slow (reference oracle)")
	salvage := fs.Bool("salvage", false, "recover the valid prefix of torn trace files")
	fs.Parse(argv)

	engine, err := tsan.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	traces, err := loadTraces(fs.Args(), *salvage)
	if err != nil {
		return err
	}
	findings := 0
	for _, tr := range traces {
		rr, err := trace.Replay(tr, trace.ReplayConfig{
			TSanCfg: tsan.Config{Engine: engine},
		})
		if err != nil {
			return err
		}
		fmt.Printf("rank %d/%d (%s): %d events replayed, %d race(s), %d finding(s)\n",
			rr.Rank, rr.WorldSize, rr.Label, rr.Events, rr.Races, len(rr.Issues))
		for _, rep := range rr.Reports {
			fmt.Printf("[rank %d] %s\n", rr.Rank, rep)
			findings++
		}
		for _, is := range rr.Issues {
			fmt.Printf("[rank %d] %s\n", rr.Rank, is)
			findings++
		}
	}
	if findings > 0 {
		os.Exit(1)
	}
	fmt.Println("no races or findings reported")
	return nil
}

func cmdStats(argv []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	salvage := fs.Bool("salvage", false, "recover the valid prefix of torn trace files")
	fs.Parse(argv)
	traces, err := loadTraces(fs.Args(), *salvage)
	if err != nil {
		return err
	}
	for i, tr := range traces {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(trace.ComputeStats(tr).Format())
	}
	return nil
}

func cmdExport(argv []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	format := fs.String("format", "chrome", "output format (chrome)")
	out := fs.String("o", "trace.json", "output file")
	salvage := fs.Bool("salvage", false, "recover the valid prefix of torn trace files")
	fs.Parse(argv)

	if *format != "chrome" {
		return fmt.Errorf("unknown export format %q (have: chrome)", *format)
	}
	traces, err := loadTraces(fs.Args(), *salvage)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.ExportChrome(traces, f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rank(s)); open in ui.perfetto.dev or chrome://tracing\n",
		*out, len(traces))
	return nil
}
