// cusan-serve is the checking-as-a-service daemon: the campaign
// engine behind a JSON HTTP API. Submit a job matrix, stream its
// per-job JSONL records as they land, query findings by fingerprint
// across all campaigns, and share one content-addressed result cache —
// a warm resubmission of an identical matrix executes zero jobs.
//
// Usage:
//
//	cusan-serve [-addr host:port] [-j N] [-cache dir] [-salt s]
//	            [-state dir] [-backlog N] [-tenant-quota N] [-version]
//
// API (see DESIGN.md §13 and the README for curl examples):
//
//	POST /v1/campaigns               submit a matrix (cusan-campaign flags as JSON)
//	GET  /v1/campaigns/{id}          campaign status
//	GET  /v1/campaigns/{id}/stream   NDJSON record stream, resumable via ?from=
//	GET  /v1/findings/{fp}           finding lookup by stable fingerprint
//	GET  /v1/status                  queue depth, cache hit rate, utilization
//
// The streamed JSONL of a completed campaign is byte-identical to
// `cusan-campaign -out` offline output for the same matrix and build
// salt. SIGTERM/SIGINT drains gracefully: in-flight jobs finish,
// queued campaigns persist manifests under -state and resume on the
// next start, and connected streams receive a terminal drain record
// carrying the offset to resume from.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cusango/internal/core"
	"cusango/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("j", runtime.NumCPU(), "per-campaign worker count")
	cacheDir := flag.String("cache", "", "shared result cache directory (empty = in-memory)")
	salt := flag.String("salt", "", "cache build salt (empty = derive from build info)")
	stateDir := flag.String("state", "", "manifest directory for drain/resume (empty = no durability)")
	backlog := flag.Int("backlog", serve.DefaultBacklog, "max queued campaigns before 429")
	quota := flag.Int("tenant-quota", serve.DefaultTenantQuota,
		"max queued+running campaigns per API key before 429 (negative = unlimited)")
	version := flag.Bool("version", false, "print build identification and exit")
	flag.Parse()

	if *version {
		fmt.Println(core.VersionLine("cusan-serve"))
		return 0
	}

	srv, err := serve.New(serve.Config{
		Workers:     *workers,
		Salt:        *salt,
		CacheDir:    *cacheDir,
		StateDir:    *stateDir,
		Backlog:     *backlog,
		TenantQuota: *quota,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "cusan-serve: listening on http://%s (workers=%d salt=%s)\n",
		ln.Addr(), *workers, srv.Salt())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "cusan-serve: %s — draining (in-flight jobs finish, backlog persists)\n", got)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}

	srv.Drain()
	// The drain woke every stream with its terminal record; Shutdown
	// now only waits for those responses to flush.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "cusan-serve: drained")
	return 0
}
