// cusan-serve is the checking-as-a-service daemon: the campaign
// engine behind a JSON HTTP API. Submit a job matrix, stream its
// per-job JSONL records as they land, query findings by fingerprint
// across all campaigns, and share one content-addressed result cache —
// a warm resubmission of an identical matrix executes zero jobs.
//
// Usage:
//
//	cusan-serve [-addr host:port] [-j N] [-concurrency K] [-cache dir]
//	            [-salt s] [-state dir] [-backlog N] [-tenant-quota N]
//	            [-timeout d] [-max-steps N] [-retries N] [-version]
//
// API (see DESIGN.md §13 and the README for curl examples):
//
//	POST /v1/campaigns               submit a matrix (cusan-campaign flags as JSON)
//	GET  /v1/campaigns/{id}          campaign status
//	GET  /v1/campaigns/{id}/stream   NDJSON record stream, resumable via ?from=
//	GET  /v1/findings/{fp}           finding lookup by stable fingerprint
//	GET  /v1/status                  queue depth, cache hit rate, utilization
//
// The streamed JSONL of a completed campaign is byte-identical to
// `cusan-campaign -out` offline output for the same matrix and build
// salt (pass matching -max-steps to both; it is part of the cache
// identity). -concurrency K runs up to K campaigns at once under
// tenant-fair scheduling over one shared -j-wide job pool. -timeout,
// -max-steps and -retries supervise every job exactly as
// cusan-campaign does: hung jobs are torn down by the watchdog,
// runaway jobs get the deterministic "budget" verdict, and infra-class
// failures retry with deterministic backoff.
//
// SIGTERM/SIGINT drains gracefully: in-flight jobs finish, queued
// campaigns persist manifests under -state and resume on the next
// start, and connected streams receive a terminal drain record
// carrying the offset to resume from. Manifests and cache entries are
// fsynced, so even a kill -9 restart resumes every accepted campaign
// with a byte-exact continuation of its stream.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cusango/internal/core"
	"cusango/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("j", runtime.NumCPU(), "process-wide job pool shared by all running campaigns")
	concurrency := flag.Int("concurrency", 1, "campaigns running at once (tenant-fair over the shared pool)")
	cacheDir := flag.String("cache", "", "shared result cache directory (empty = in-memory)")
	salt := flag.String("salt", "", "cache build salt (empty = derive from build info)")
	stateDir := flag.String("state", "", "manifest directory for drain/resume (empty = no durability)")
	backlog := flag.Int("backlog", serve.DefaultBacklog, "max queued campaigns before 429")
	quota := flag.Int("tenant-quota", serve.DefaultTenantQuota,
		"max queued+running campaigns per API key before 429 (negative = unlimited)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline per job attempt (0 = no watchdog)")
	maxSteps := flag.Int64("max-steps", 0,
		"logical step budget per job (0 = unlimited; changes verdicts, salts the cache)")
	retries := flag.Int("retries", 0, "max supervised retries of infra-class failures")
	version := flag.Bool("version", false, "print build identification and exit")
	flag.Parse()

	if *version {
		fmt.Println(core.VersionLine("cusan-serve"))
		return 0
	}

	if *timeout < 0 || *maxSteps < 0 || *retries < 0 || *concurrency < 0 {
		fmt.Fprintln(os.Stderr, "cusan-serve: -timeout, -max-steps, -retries and -concurrency must be >= 0")
		return 1
	}
	srv, err := serve.New(serve.Config{
		Workers:     *workers,
		Concurrency: *concurrency,
		Salt:        *salt,
		CacheDir:    *cacheDir,
		StateDir:    *stateDir,
		Backlog:     *backlog,
		TenantQuota: *quota,
		JobTimeout:  *timeout,
		Retries:     *retries,
		MaxSteps:    *maxSteps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "cusan-serve: listening on http://%s (workers=%d concurrency=%d salt=%s)\n",
		ln.Addr(), *workers, *concurrency, srv.Salt())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "cusan-serve: %s — draining (in-flight jobs finish, backlog persists)\n", got)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}

	srv.Drain()
	// The drain woke every stream with its terminal record; Shutdown
	// now only waits for those responses to flush.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "cusan-serve:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "cusan-serve: drained")
	return 0
}
