// cusan-kir is the developer tool for the kernel IR: format, verify,
// analyze, and execute textual kernel modules — the opt/llc analog of
// this reproduction's device toolchain.
//
// Usage:
//
//	cusan-kir fmt     <file.kir>   # parse + reprint (canonical form)
//	cusan-kir verify  <file.kir>   # type-check and call-graph check
//	cusan-kir analyze <file.kir>   # per-kernel argument access analysis + static race verdicts
//	cusan-kir race    <file.kir>   # static intra-kernel race check (exit 1 if a race is found)
//	cusan-kir run     <file.kir> -kernel NAME [-grid N] [-block N] [-fargs "1.5,2"] [-iargs "64"] [-elems N]
//
// `race` runs the internal/kstatic checker: per kernel it prints
// race-free (proved), race (with a concrete two-thread witness), or
// unknown, plus the barrier-interval segmentation. `analyze` appends
// the same verdict summary after the per-argument access table.
//
// `run` allocates one device float64 buffer of -elems elements per
// pointer parameter (zero-initialized), launches the kernel, and prints
// the first few elements of every buffer afterwards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cusango/internal/core"
	"cusango/internal/kaccess"
	"cusango/internal/kinterp"
	"cusango/internal/kir"
	"cusango/internal/kstatic"
	"cusango/internal/memspace"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cusan-kir: "+format+"\n", args...)
	os.Exit(1)
}

func loadModule(path string) *kir.Module {
	src, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	m, err := kir.Parse(string(src))
	if err != nil {
		fatalf("%v", err)
	}
	return m
}

func main() {
	if len(os.Args) >= 2 {
		switch os.Args[1] {
		case "version", "-version", "--version":
			fmt.Println(core.VersionLine("cusan-kir"))
			return
		}
	}
	if len(os.Args) < 3 {
		fatalf("usage: cusan-kir fmt|verify|analyze|race|run|version <file.kir> [flags]")
	}
	cmd, path := os.Args[1], os.Args[2]
	switch cmd {
	case "fmt":
		fmt.Print(loadModule(path).String())
	case "verify":
		loadModule(path) // Parse verifies
		fmt.Println("ok")
	case "analyze":
		m := loadModule(path)
		res, err := kaccess.Analyze(m)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(res.String())
		rep, err := kstatic.Analyze(m)
		if err != nil {
			fatalf("%v", err)
		}
		if len(rep.Kernels) > 0 {
			fmt.Print("static:\n", indent(rep.String()))
		}
	case "race":
		rep, err := kstatic.Analyze(loadModule(path))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(rep.String())
		for _, kr := range rep.Kernels {
			if kr.Verdict == kstatic.VerdictRace {
				os.Exit(1)
			}
		}
	case "run":
		runCmd(path, os.Args[3:])
	default:
		fatalf("unknown command %q", cmd)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func runCmd(path string, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	kernel := fs.String("kernel", "", "kernel to launch (required)")
	grid := fs.Int("grid", 1, "grid.x blocks")
	block := fs.Int("block", 64, "block.x threads")
	elems := fs.Int64("elems", 64, "float64 elements per pointer argument")
	fargsS := fs.String("fargs", "", "comma-separated float scalar arguments, in order")
	iargsS := fs.String("iargs", "", "comma-separated int scalar arguments, in order")
	show := fs.Int("show", 8, "elements of each buffer to print")
	if err := fs.Parse(args); err != nil {
		fatalf("%v", err)
	}
	if *kernel == "" {
		fatalf("run: -kernel is required")
	}
	m := loadModule(path)
	f := m.Func(*kernel)
	if f == nil || !f.Kernel {
		fatalf("no kernel %q in %s", *kernel, path)
	}

	fargs := splitFloats(*fargsS)
	iargs := splitInts(*iargsS)
	mem := memspace.New()
	var launchArgs []kinterp.Arg
	var bufs []memspace.Addr
	var bufNames []string
	for _, p := range f.Params {
		switch {
		case p.Type.IsPtr():
			a := mem.Alloc(*elems*8, memspace.KindDevice)
			bufs = append(bufs, a)
			bufNames = append(bufNames, p.Name)
			launchArgs = append(launchArgs, kinterp.Ptr(a))
		case p.Type == kir.TFloat:
			if len(fargs) == 0 {
				fatalf("missing float argument for parameter %q", p.Name)
			}
			launchArgs = append(launchArgs, kinterp.F64(fargs[0]))
			fargs = fargs[1:]
		default:
			if len(iargs) == 0 {
				fatalf("missing int argument for parameter %q", p.Name)
			}
			launchArgs = append(launchArgs, kinterp.Int(iargs[0]))
			iargs = iargs[1:]
		}
	}
	eng, err := kinterp.New(m, kinterp.Config{})
	if err != nil {
		fatalf("%v", err)
	}
	if err := eng.Launch(*kernel, kinterp.Dim(*grid), kinterp.Dim(*block), launchArgs, mem); err != nil {
		fatalf("%v", err)
	}
	for i, a := range bufs {
		n := *show
		if int64(n) > *elems {
			n = int(*elems)
		}
		vals := make([]string, n)
		for j := 0; j < n; j++ {
			vals[j] = strconv.FormatFloat(mem.Float64(a+memspace.Addr(j*8)), 'g', -1, 64)
		}
		fmt.Printf("%s[0:%d] = [%s]\n", bufNames[i], n, strings.Join(vals, " "))
	}
}

func splitFloats(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatalf("bad float %q", part)
		}
		out = append(out, x)
	}
	return out
}

func splitInts(s string) []int64 {
	if s == "" {
		return nil
	}
	var out []int64
	for _, part := range strings.Split(s, ",") {
		x, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			fatalf("bad int %q", part)
		}
		out = append(out, x)
	}
	return out
}
