// cusan-run executes a mini-app under a chosen instrumentation flavor
// and prints race reports, MUST findings, and the runtime event counters
// — the "make jacobi-run" / "make tealeaf-run" analog of the paper's
// artifact.
//
// Usage:
//
//	cusan-run [-app jacobi|tealeaf|halo2d]
//	          [-flavor vanilla|tsan|must|cusan|must+cusan]
//	          [-engine fast|slow] [-ranks N] [-nx N] [-ny N] [-iters N]
//	          [-inject-race] [-skip-wait] [-faults spec] [-max-steps N]
//	          [-timeout d] [-explore] [-explore-budget N] [-explore-bound N]
//	          [-schedule spec]
//
// -faults injects deterministic runtime faults (see internal/faults):
// "seed=7,rate=0.05" perturbs every site at 5%, "cuda-malloc@2:r1"
// fails exactly the third cudaMalloc on rank 1. Every injected fault
// is reported with a replay spec that re-injects it exactly. The
// sched-stall site ("sched-stall@0:r1") wedges a rank forever and only
// fires when named explicitly; combine it with -timeout so the run
// terminates (-max-steps cannot catch a blocked rank — it meters
// started operations, not elapsed time).
//
// -max-steps caps the run's logical steps — MPI operations started per
// rank on free runs, controller decisions under -explore/-schedule —
// and tears the job down deterministically when exceeded. -timeout is
// the wall-clock watchdog: when it fires the MPI world is torn down
// and every rank reports an abort naming only the configured deadline,
// so a wedged run ends with deterministic output. They are the
// supervision primitives behind `cusan-campaign -max-steps/-timeout`.
//
// -explore runs the app under the controlled scheduler (internal/sched)
// and systematically enumerates its completion schedules with DPOR
// pruning (internal/explore): the verdict is either "race-free across
// all N schedules" or a minimal racy schedule spec that -schedule
// replays byte-identically. -explore-bound caps non-default choices per
// schedule (preemption bounding); bounded or budget-capped explorations
// report themselves incomplete.
//
// Exit codes:
//
//	0  clean run, no findings
//	1  race reports or MUST findings
//	2  usage error (bad flags, unknown app, malformed -faults spec)
//	3  application fault (a rank failed — e.g. an injected fault)
//	4  tool degraded (a checker crash was contained; verdict partial)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cusango/internal/apps"
	"cusango/internal/core"
	"cusango/internal/cusan"
	"cusango/internal/explore"
	"cusango/internal/faults"
	"cusango/internal/sched"
	"cusango/internal/tsan"
)

// Exit codes. Precedence when several apply: usage > app fault >
// degraded > race > clean — a partial verdict must not masquerade as
// a definitive one.
const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
	exitAppFault = 3
	exitDegraded = 4
)

func main() {
	appName := flag.String("app", "jacobi",
		"mini-app: "+strings.Join(apps.Names(), ", "))
	flavorName := flag.String("flavor", "must+cusan", "instrumentation flavor")
	engineName := flag.String("engine", "fast",
		"shadow engine: fast (batched packed-word walker, the default) or slow (granule-at-a-time reference oracle)")
	shards := flag.Int("shards", 0,
		"shard the shadow page index over this many buckets (rounded up to a power of two; 0/1 = single index) so kernel-argument batches are checked concurrently")
	batchWorkers := flag.Int("batch-workers", 0,
		"cap the goroutines used for sharded batch checking (0 = GOMAXPROCS; needs -shards > 1)")
	ranks := flag.Int("ranks", 2, "MPI world size")
	nx := flag.Int("nx", 0, "global NX (0 = app default)")
	ny := flag.Int("ny", 0, "global NY (0 = app default)")
	iters := flag.Int("iters", 0, "iterations (0 = app default)")
	injectRace := flag.Bool("inject-race", false,
		"inject the app's primary race (the paper's Fig. 4 bug)")
	skipWait := flag.Bool("skip-wait", false,
		"tealeaf only: use the halo before MPI_Waitall (MPI-to-CUDA bug)")
	faultSpec := flag.String("faults", "",
		"deterministic fault schedule, e.g. \"seed=7,rate=0.05\" or \"cuda-malloc@2:r1\"")
	maxSteps := flag.Int64("max-steps", 0,
		"logical step budget: per-rank MPI ops, or controller decisions under -explore (0 = unlimited)")
	timeout := flag.Duration("timeout", 0,
		"wall-clock watchdog: tear the run down after this long (0 = none)")
	exploreFlag := flag.Bool("explore", false,
		"systematically explore completion schedules (controlled scheduler + DPOR)")
	exploreBudget := flag.Int("explore-budget", 512,
		"-explore: max schedules to execute (0 = unlimited)")
	exploreBound := flag.Int("explore-bound", 0,
		"-explore: preemption bound — max non-default choices per schedule (0 = unbounded)")
	scheduleSpec := flag.String("schedule", "",
		"replay one completion schedule from its spec (e.g. \"g1.m0\"); runs controlled")
	version := flag.Bool("version", false, "print build identification and exit")
	flag.Parse()

	if *version {
		fmt.Println(core.VersionLine("cusan-run"))
		os.Exit(exitClean)
	}

	flavor, err := core.ParseFlavor(*flavorName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	engine, err := tsan.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	app, err := apps.Get(*appName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-run:", err)
		os.Exit(exitUsage)
	}
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-run:", err)
		os.Exit(exitUsage)
	}

	opt := apps.Options{
		NX: *nx, NY: *ny, Iters: *iters,
		InjectRace: *injectRace, SkipWait: *skipWait,
	}
	if *maxSteps < 0 || *timeout < 0 {
		fmt.Fprintln(os.Stderr, "cusan-run: -max-steps and -timeout must be >= 0")
		os.Exit(exitUsage)
	}
	cfg := core.Config{
		Flavor:   flavor,
		Ranks:    *ranks,
		Module:   app.Module(),
		Faults:   plan,
		MaxSteps: *maxSteps,
	}
	cfg.TSanCfg.Engine = engine
	cfg.TSanCfg.Shards = *shards
	cfg.TSanCfg.BatchWorkers = *batchWorkers
	if *timeout > 0 {
		// The cause names only the configured deadline, never elapsed
		// time, so a watchdog teardown prints identically on every run.
		ctx, cancel := context.WithTimeoutCause(context.Background(), *timeout,
			fmt.Errorf("watchdog: run exceeded the %s deadline", *timeout))
		defer cancel()
		cfg.Ctx = ctx
	}

	if *exploreFlag || *scheduleSpec != "" {
		if plan != nil {
			fmt.Fprintln(os.Stderr, "cusan-run: -faults cannot combine with -explore/-schedule (schedule determinism)")
			os.Exit(exitUsage)
		}
		os.Exit(runControlled(cfg, app, opt, *scheduleSpec, *exploreBudget, *exploreBound, *maxSteps))
	}
	res, err := core.Run(cfg, func(s *core.Session) error {
		line, err := app.Run(s, opt)
		if err != nil {
			return err
		}
		if s.Rank() == 0 {
			fmt.Println(line)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-run:", err)
		os.Exit(exitUsage)
	}

	exit := exitClean
	appFault, degraded := false, false
	for i := range res.Ranks {
		rr := &res.Ranks[i]
		for _, rep := range rr.Reports {
			fmt.Printf("[rank %d] %s\n", rr.Rank, rep)
			exit = exitFindings
		}
		for _, is := range rr.Issues {
			fmt.Printf("[rank %d] %s\n", rr.Rank, is)
			exit = exitFindings
		}
		for _, f := range rr.Injected {
			fmt.Printf("[rank %d] injected %s occurrence %d (replay: -faults %q)\n",
				rr.Rank, f.Site, f.Occurrence, f.Spec())
		}
		if d := rr.Degraded; d != nil {
			degraded = true
			fmt.Fprintf(os.Stderr, "cusan-run: checker degraded: %s\n", d)
		}
		if rr.Err != nil {
			appFault = true
			fmt.Fprintf(os.Stderr, "cusan-run: rank %d: %v\n", rr.Rank, rr.Err)
		}
	}
	if flavor.HasCuSan() {
		fmt.Printf("\nCuSan event counters, rank 0 (Table I format):\n%s",
			formatCounters(res.Ranks[0].CudaCtrs))
	}
	if res.TotalRaces() == 0 && res.TotalIssues() == 0 {
		fmt.Println("no races or findings reported")
	}
	// Precedence: an app fault trumps a degraded verdict trumps findings
	// — a run that died or lost its checker cannot vouch for "clean".
	switch {
	case appFault:
		exit = exitAppFault
	case degraded:
		exit = exitDegraded
	}
	os.Exit(exit)
}

// runControlled handles -explore and -schedule: the app runs under the
// controlled scheduler, either replaying one schedule spec or
// enumerating the whole schedule space.
func runControlled(cfg core.Config, app apps.App, opt apps.Options, spec string, budget, bound int, maxSteps int64) int {
	runOne := func(prefix []sched.Choice) explore.Outcome {
		rep := sched.NewReplayer(prefix)
		ctl := sched.NewController(cfg.Ranks, rep)
		if maxSteps > 0 {
			ctl.SetStepBudget(int(maxSteps))
		}
		c := cfg
		c.Sched = ctl
		// Controlled runs meter decisions, not per-rank ops: the decision
		// log is the schedule identity, so the budget must be a pure
		// function of it.
		c.MaxSteps = 0
		res, err := core.Run(c, func(s *core.Session) error {
			_, err := app.Run(s, opt)
			return err
		})
		out := explore.Outcome{
			Log:    ctl.Log(),
			Acts:   ctl.Acts(),
			Forced: ctl.Forced(),
			Stuck:  ctl.Stuck(),
			Budget: ctl.BudgetHit(),
		}
		switch {
		case err != nil:
			out.Err = err
		case rep.Err() != nil:
			out.Err = rep.Err()
		case out.Stuck || out.Budget:
			// The controller tore this schedule down deliberately (proven
			// deadlock or step budget); rank errors are the teardown.
		default:
			if res != nil {
				out.Err = res.FirstError()
			}
		}
		if res != nil {
			out.Races = res.TotalRaces()
		}
		return out
	}

	if spec != "" {
		prefix, err := sched.ParseSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cusan-run:", err)
			return exitUsage
		}
		out := runOne(prefix)
		fmt.Printf("schedule %s: races=%d stuck=%v budget=%v\n",
			sched.FormatSpec(out.Log), out.Races, out.Stuck, out.Budget)
		switch {
		case out.Err != nil:
			fmt.Fprintln(os.Stderr, "cusan-run:", out.Err)
			return exitAppFault
		case out.Races > 0 || out.Stuck:
			return exitFindings
		}
		return exitClean
	}

	res := explore.Run(explore.Options{MaxSchedules: budget, PreemptionBound: bound}, runOne)
	fmt.Printf("%s -ranks %d: %s\n", app.Name, cfg.Ranks, res.String())
	if res.Stuck > 0 {
		fmt.Printf("  %d schedule(s) deadlocked\n", res.Stuck)
	}
	if res.Budgeted > 0 {
		fmt.Printf("  %d schedule(s) cut short by -max-steps %d\n", res.Budgeted, maxSteps)
	}
	if res.MinRacySpec != "" {
		fmt.Printf("  replay the minimal racy schedule: cusan-run -app %s -ranks %d -schedule %q\n",
			app.Name, cfg.Ranks, res.MinRacySpec)
	}
	for _, e := range res.Errs {
		fmt.Fprintln(os.Stderr, "cusan-run:", e)
	}
	switch {
	case len(res.Errs) > 0:
		return exitAppFault
	case res.Racy > 0 || res.Stuck > 0:
		return exitFindings
	}
	return exitClean
}

// formatCounters renders the per-process counter block.
func formatCounters(c cusan.Counters) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  Stream                 %8d\n", c.Streams)
	fmt.Fprintf(&b, "  Memset                 %8d\n", c.Memsets)
	fmt.Fprintf(&b, "  Memcpy                 %8d\n", c.Memcpys)
	fmt.Fprintf(&b, "  Synchronization calls  %8d\n", c.SyncCalls)
	fmt.Fprintf(&b, "  Kernel calls           %8d\n", c.KernelCalls)
	fmt.Fprintf(&b, "  Switch To Fiber        %8d\n", c.FiberSwitches)
	fmt.Fprintf(&b, "  AnnotateHappensBefore  %8d\n", c.HBAnnotations)
	fmt.Fprintf(&b, "  AnnotateHappensAfter   %8d\n", c.HAAnnotations)
	fmt.Fprintf(&b, "  Read/Write Ranges      %8d/%d (avg %.2f/%.2f KB)\n",
		c.ReadRanges, c.WriteRanges, c.AvgReadKB(), c.AvgWriteKB())
	return b.String()
}
