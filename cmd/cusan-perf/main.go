// cusan-perf is the machine-readable performance harness CLI: it runs
// the named benchmark scenarios for R repeats, emits schema-versioned
// BENCH_<scenario>.json files, diffs fresh runs against committed
// baselines with noise-aware per-metric thresholds, and gates CI on
// confirmed regressions.
//
// Usage:
//
//	cusan-perf record  [-out bench/baselines] [-scenarios a,b] [-repeats N] [-warmup N]
//	cusan-perf compare [-baseline bench/baselines] [-scenarios a,b] [-repeats N] [-warmup N]
//	                   [-rel-tol X] [-mad-mult M] [-strict] [-save dir] [-all]
//	cusan-perf gate    (compare flags) [-retries N]
//	cusan-perf list
//
// Every subcommand accepts -cpuprofile/-memprofile so a flagged
// regression is immediately profilable. Exit codes:
//
//	0  success (gate: no confirmed regression, no canonical drift)
//	1  gate found a confirmed regression or canonical drift
//	2  usage error
//	3  infrastructure error (a scenario could not run, unreadable baseline)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cusango/internal/core"
	"cusango/internal/perf"
)

const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
	exitError      = 3
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, `usage: cusan-perf <record|compare|gate|list> [flags]
  record   run scenarios and write BENCH_<scenario>.json baselines
  compare  run scenarios fresh and diff against a baseline directory
  gate     like compare, but exit 1 on confirmed regression (auto-retry rejects flukes)
  list     print the scenario catalog
run 'cusan-perf <cmd> -h' for per-command flags`)
	return exitUsage
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "record":
		return cmdRecord(rest)
	case "compare":
		return cmdCompare(rest, false)
	case "gate":
		return cmdCompare(rest, true)
	case "list":
		return cmdList(rest)
	case "version", "-version", "--version":
		fmt.Println(core.VersionLine("cusan-perf"))
		return exitOK
	case "-h", "--help", "help":
		usage()
		return exitOK
	default:
		fmt.Fprintf(os.Stderr, "cusan-perf: unknown command %q\n", cmd)
		return usage()
	}
}

// common registers the flags every measuring subcommand shares.
type common struct {
	scenarios  string
	repeats    int
	warmup     int
	cpuprofile string
	memprofile string
}

func (c *common) register(fs *flag.FlagSet) {
	fs.StringVar(&c.scenarios, "scenarios", "all", "comma-separated scenario names (see 'cusan-perf list')")
	fs.IntVar(&c.repeats, "repeats", 3, "measured repeats per scenario (deterministic scenarios always run once)")
	fs.IntVar(&c.warmup, "warmup", 1, "discarded warmup repeats per scenario")
	fs.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.memprofile, "memprofile", "", "write a heap profile to this file")
}

// withProfiles runs body under the pprof hooks and returns its code.
func (c *common) withProfiles(body func() int) int {
	stop, err := perf.StartProfiles(c.cpuprofile, c.memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-perf:", err)
		return exitError
	}
	code := body()
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, "cusan-perf:", err)
		if code == exitOK {
			code = exitError
		}
	}
	return code
}

func (c *common) runConfig() perf.RunConfig {
	warmup := c.warmup
	if warmup == 0 {
		warmup = -1 // RunConfig uses -1 for "explicitly zero"
	}
	return perf.RunConfig{Repeats: c.repeats, Warmup: warmup}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func cmdRecord(args []string) int {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var c common
	c.register(fs)
	out := fs.String("out", "bench/baselines", "directory to write BENCH_<scenario>.json files into")
	fs.Parse(args)

	scs, err := perf.Select(c.scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-perf:", err)
		return exitUsage
	}
	return c.withProfiles(func() int {
		results, err := perf.RunAll(scs, c.runConfig(), logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cusan-perf:", err)
			return exitError
		}
		for _, sc := range scs {
			path, err := perf.WriteFile(*out, results[sc.Name])
			if err != nil {
				fmt.Fprintln(os.Stderr, "cusan-perf:", err)
				return exitError
			}
			fmt.Println("wrote", path)
		}
		return exitOK
	})
}

func cmdCompare(args []string, gate bool) int {
	name := "compare"
	if gate {
		name = "gate"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	var c common
	c.register(fs)
	baseline := fs.String("baseline", "bench/baselines", "baseline directory")
	relTol := fs.Float64("rel-tol", 0, "override every gated metric's relative tolerance (0 = per-metric)")
	madMult := fs.Float64("mad-mult", -1, "override every gated metric's MAD multiplier (<0 = per-metric)")
	strict := fs.Bool("strict", false, "also gate absolute time/rate metrics (same-machine baselines only)")
	save := fs.String("save", "", "write the fresh run's BENCH files into this directory (CI artifact)")
	all := fs.Bool("all", false, "print every metric delta, not just the notable ones")
	retries := 1
	if gate {
		fs.IntVar(&retries, "retries", 1, "confirmation passes per regressed scenario (fluke rejection)")
	}
	fs.Parse(args)

	scs, err := perf.Select(c.scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-perf:", err)
		return exitUsage
	}
	base, err := perf.ReadDir(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cusan-perf:", err)
		return exitError
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "cusan-perf: no BENCH_*.json baselines in %s\n", *baseline)
		return exitError
	}
	copt := perf.CompareOptions{RelTol: *relTol, MADMult: *madMult, Strict: *strict}

	return c.withProfiles(func() int {
		if !gate {
			results, err := perf.RunAll(scs, c.runConfig(), logf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cusan-perf:", err)
				return exitError
			}
			if code := saveResults(*save, scs, results); code != exitOK {
				return code
			}
			cmp := perf.Compare(base, results, copt)
			printComparison(cmp, *all)
			return exitOK
		}

		outcome, err := perf.Gate(base, scs, perf.GateOptions{
			Run: c.runConfig(), Cmp: copt, Retries: retries,
		}, logf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cusan-perf:", err)
			return exitError
		}
		if code := saveResults(*save, scs, outcome.Results); code != exitOK {
			return code
		}
		printComparison(outcome.First, *all)
		for _, d := range outcome.Flukes {
			fmt.Printf("fluke (retry cleared): %s/%s\n", d.Scenario, d.Metric)
		}
		for _, d := range outcome.Drifts {
			fmt.Printf("DRIFT %s: %s\n", d.Scenario, d.Detail)
		}
		for _, d := range outcome.Confirmed {
			fmt.Printf("CONFIRMED %s\n", d)
		}
		if !outcome.Pass() {
			fmt.Printf("gate: FAIL (%d confirmed regression(s), %d canonical drift(s))\n",
				len(outcome.Confirmed), len(outcome.Drifts))
			return exitRegression
		}
		fmt.Println("gate: PASS")
		return exitOK
	})
}

func saveResults(dir string, scs []perf.Scenario, results map[string]*perf.Result) int {
	if dir == "" {
		return exitOK
	}
	for _, sc := range scs {
		if r := results[sc.Name]; r != nil {
			if _, err := perf.WriteFile(dir, r); err != nil {
				fmt.Fprintln(os.Stderr, "cusan-perf:", err)
				return exitError
			}
		}
	}
	return exitOK
}

// printComparison renders the delta table: regressions and drift
// always, everything else under -all (plus a one-line tally).
func printComparison(cmp *perf.Comparison, all bool) {
	counts := map[string]int{}
	for _, d := range cmp.Deltas {
		counts[d.Status]++
		if all || (d.Status != perf.StatusOK) {
			fmt.Println(d)
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Print("compare:")
	for _, k := range keys {
		fmt.Printf(" %s=%d", k, counts[k])
	}
	fmt.Printf(" drift=%d\n", len(cmp.Drifts))
}

func cmdList(args []string) int {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also list each scenario's metrics")
	fs.Parse(args)
	for _, sc := range perf.Scenarios() {
		det := ""
		if sc.Deterministic {
			det = " [deterministic]"
		}
		fmt.Printf("%-18s %s%s\n", sc.Name, sc.Doc, det)
		if *verbose {
			fmt.Printf("%18s   params: %s\n", "", sc.Params)
			for _, m := range sc.Metrics {
				gate := "gated"
				if m.Trend {
					gate = "trend"
				} else if m.Class == perf.ClassTime || m.Class == perf.ClassRate {
					gate = "strict-only"
				}
				fmt.Printf("%18s   %-26s %-8s %-6s better=%s (%s)\n",
					"", m.Name, m.Unit, m.Class, m.Better, gate)
			}
		}
	}
	return exitOK
}
