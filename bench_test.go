package cusango_test

// Top-level benchmarks: one testing.B target per table/figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// benchmark executes the corresponding harness experiment once per
// iteration on reduced models; cmd/cusan-bench runs the full-size
// defaults and prints the formatted tables.

import (
	"testing"

	"cusango/internal/apps/jacobi"
	"cusango/internal/apps/tealeaf"
	"cusango/internal/bench"
	"cusango/internal/core"
	"cusango/internal/cusan"
	"cusango/internal/memspace"
	"cusango/internal/tsan"
)

func benchConfig() bench.Config {
	return bench.Config{
		Ranks:      2,
		Runs:       1,
		Warmup:     0,
		JacobiCfg:  jacobi.Config{NX: 128, NY: 64, Iters: 50},
		TeaLeafCfg: tealeaf.Config{NX: 48, NY: 48, Iters: 20, K: 0.1},
		Fig12Sizes: [][2]int{{32, 16}, {64, 32}, {128, 64}},
	}
}

// BenchmarkFig10RuntimeOverhead regenerates the Fig. 10 measurement.
func BenchmarkFig10RuntimeOverhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11MemoryOverhead regenerates the Fig. 11 measurement.
func BenchmarkFig11MemoryOverhead(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1EventCounters regenerates the Table I counters.
func BenchmarkTable1EventCounters(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12JacobiScaling regenerates the domain-size sweep.
func BenchmarkFig12JacobiScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig12(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMemoryTracking regenerates the §V-B ablation.
func BenchmarkAblationMemoryTracking(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeEngine measures the shadow-range annotation hot path in
// isolation: a 64 KiB WriteRange (the Jacobi-scale kernel-argument
// annotation) against the batched page-walking engine, the batched
// engine without its same-epoch range cache, and the granule-at-a-time
// reference walk. The acceptance bar for the batched engine is >= 2x
// the reference throughput on this shape with the default K=2 cells.
func BenchmarkRangeEngine(b *testing.B) {
	const rangeBytes = 64 << 10
	variants := []struct {
		name string
		cfg  tsan.Config
	}{
		{"batched", tsan.Config{}},
		{"batched-nocache", tsan.Config{DisableRangeCache: true}},
		{"slow", tsan.Config{Engine: tsan.EngineSlow}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			s := tsan.New(v.cfg)
			info := &tsan.AccessInfo{Site: "kernel bench", Object: "arg 0"}
			addr := memspace.Addr(3 << 40)
			b.SetBytes(rangeBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.WriteRange(addr, rangeBytes, info)
			}
		})
	}
}

// Per-flavor single-app benchmarks (the raw data points behind Fig. 10),
// useful for profiling the tool stack.

func benchmarkApp(b *testing.B, app bench.App, flavor core.Flavor) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Measure(app, flavor, cfg, cusan.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJacobiVanilla(b *testing.B)   { benchmarkApp(b, bench.Jacobi, core.Vanilla) }
func BenchmarkJacobiTSan(b *testing.B)      { benchmarkApp(b, bench.Jacobi, core.TSan) }
func BenchmarkJacobiMUST(b *testing.B)      { benchmarkApp(b, bench.Jacobi, core.MUST) }
func BenchmarkJacobiCuSan(b *testing.B)     { benchmarkApp(b, bench.Jacobi, core.CuSan) }
func BenchmarkJacobiMUSTCuSan(b *testing.B) { benchmarkApp(b, bench.Jacobi, core.MUSTCuSan) }

func BenchmarkTeaLeafVanilla(b *testing.B)   { benchmarkApp(b, bench.TeaLeaf, core.Vanilla) }
func BenchmarkTeaLeafTSan(b *testing.B)      { benchmarkApp(b, bench.TeaLeaf, core.TSan) }
func BenchmarkTeaLeafMUST(b *testing.B)      { benchmarkApp(b, bench.TeaLeaf, core.MUST) }
func BenchmarkTeaLeafCuSan(b *testing.B)     { benchmarkApp(b, bench.TeaLeaf, core.CuSan) }
func BenchmarkTeaLeafMUSTCuSan(b *testing.B) { benchmarkApp(b, bench.TeaLeaf, core.MUSTCuSan) }
