// Package cusango is a pure-Go reproduction of "Compiler-Aided
// Correctness Checking of CUDA-Aware MPI Applications" (Hück et al.,
// SC-W 2024): the CuSan data race detector for hybrid CUDA-aware MPI
// programs, together with every substrate it depends on — a simulated
// CUDA runtime and UVA address space, a kernel IR with the paper's
// interprocedural access analysis, a ThreadSanitizer-style
// happens-before detector with fibers, an in-process CUDA-aware MPI
// library, and the MUST and TypeART integrations.
//
// Entry points:
//
//   - internal/core — build and run an instrumented CUDA-aware MPI
//     application under a tool flavor (vanilla/tsan/must/cusan/must+cusan);
//   - internal/cusan — the CuSan runtime itself;
//   - internal/testsuite — the classified correct/incorrect test suite;
//   - internal/bench — the harness regenerating the paper's tables and
//     figures;
//   - cmd/cusan-run, cmd/cusan-bench, cmd/cusan-testsuite — executables;
//   - examples/ — runnable walk-throughs.
//
// See README.md for the architecture overview, DESIGN.md for the
// substitution mapping from the paper's stack to this repository, and
// EXPERIMENTS.md for paper-versus-measured results.
package cusango
