module cusango

go 1.22
